//! The abstract syntax tree for the SQL subset.
//!
//! The AST is deliberately flat: a query is a `SELECT` list, a `FROM` list, a
//! conjunction of `WHERE` predicates, optional `GROUP BY` / `HAVING` /
//! `ORDER BY` / `LIMIT`.  This matches the space of queries produced by the
//! benchmark NLIDBs (the paper removes the handful of benchmark queries with
//! correlated subqueries, Section VII-A.4) and makes fragment extraction
//! (Section IV) straightforward.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a relation in the `FROM` clause, with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableRef {
    /// The relation name.
    pub table: String,
    /// The alias used to refer to the relation elsewhere in the query.
    pub alias: Option<String>,
}

impl TableRef {
    /// A table reference without an alias.
    pub fn new(table: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: None,
        }
    }

    /// A table reference with an alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name other clauses use to refer to this relation: the alias if
    /// present, otherwise the relation name itself.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} {}", self.table, a),
            None => write!(f, "{}", self.table),
        }
    }
}

/// A (possibly qualified) column reference such as `p.title` or `year`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// The table alias or relation name qualifying the column, if any.
    pub qualifier: Option<String>,
    /// The column (attribute) name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn new(column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            column: column.into(),
        }
    }

    /// A qualified column reference (`qualifier.column`).
    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{}.{}", q, self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregate {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl Aggregate {
    /// The SQL name of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
        }
    }

    /// Parse an aggregate name (any case).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_uppercase().as_str() {
            "COUNT" => Some(Aggregate::Count),
            "SUM" => Some(Aggregate::Sum),
            "AVG" => Some(Aggregate::Avg),
            "MIN" => Some(Aggregate::Min),
            "MAX" => Some(Aggregate::Max),
            _ => None,
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A scalar expression usable in `SELECT`, `ORDER BY` and `HAVING`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A plain column reference.
    Column(ColumnRef),
    /// An aggregate application; `arg = None` means `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: Aggregate,
        /// Whether `DISTINCT` was specified inside the aggregate.
        distinct: bool,
        /// The aggregated column; `None` for `COUNT(*)`.
        arg: Option<ColumnRef>,
    },
    /// A literal value.
    Literal(Literal),
}

impl Expr {
    /// The column referenced by this expression, if any.
    pub fn column(&self) -> Option<&ColumnRef> {
        match self {
            Expr::Column(c) => Some(c),
            Expr::Aggregate { arg, .. } => arg.as_ref(),
            Expr::Literal(_) => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Aggregate {
                func,
                distinct,
                arg,
            } => {
                let inner = match arg {
                    Some(c) => c.to_string(),
                    None => "*".to_string(),
                };
                if *distinct {
                    write!(f, "{func}(DISTINCT {inner})")
                } else {
                    write!(f, "{func}({inner})")
                }
            }
            Expr::Literal(l) => write!(f, "{l}"),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// A numeric literal.
    Number(f64),
    /// A string literal.
    String(String),
    /// `NULL`
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Literal::String(s) => write!(f, "'{s}'"),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// A binary comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `LIKE`
    Like,
}

impl BinOp {
    /// The SQL rendering of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Like => "LIKE",
        }
    }

    /// Parse an operator from a natural-language comparison word, used by the
    /// keyword-metadata layer ("after" -> `>`, "before" -> `<`, ...).
    pub fn from_word(word: &str) -> Option<Self> {
        match word.to_lowercase().as_str() {
            "after" | "more" | "above" | "over" | "greater" | "later" => Some(BinOp::Gt),
            "before" | "less" | "below" | "under" | "fewer" | "earlier" => Some(BinOp::Lt),
            "exactly" | "equal" | "in" => Some(BinOp::Eq),
            "least" | "atleast" => Some(BinOp::GtEq),
            "most" | "atmost" => Some(BinOp::LtEq),
            _ => None,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A single predicate in the `WHERE` (or `HAVING`) conjunction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `left op right` where `right` is a literal or another column (the
    /// latter form expresses FK-PK join conditions).
    Compare {
        /// Left-hand side expression (a column, or an aggregate in `HAVING`).
        left: Expr,
        /// The comparison operator.
        op: BinOp,
        /// Right-hand side expression.
        right: Expr,
    },
    /// `col IN (v1, v2, ...)` (or `NOT IN`).
    In {
        /// The tested column.
        col: ColumnRef,
        /// The literal list.
        values: Vec<Literal>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `col BETWEEN low AND high`.
    Between {
        /// The tested column.
        col: ColumnRef,
        /// Lower bound (inclusive).
        low: Literal,
        /// Upper bound (inclusive).
        high: Literal,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        /// The tested column.
        col: ColumnRef,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Predicate {
    /// True when the predicate is a join condition: a column-to-column
    /// equality comparison.
    pub fn is_join_condition(&self) -> bool {
        matches!(
            self,
            Predicate::Compare {
                left: Expr::Column(_),
                op: BinOp::Eq,
                right: Expr::Column(_),
            }
        )
    }

    /// The columns mentioned by the predicate.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        match self {
            Predicate::Compare { left, right, .. } => {
                let mut cols = Vec::new();
                if let Some(c) = left.column() {
                    cols.push(c);
                }
                if let Some(c) = right.column() {
                    cols.push(c);
                }
                cols
            }
            Predicate::In { col, .. }
            | Predicate::Between { col, .. }
            | Predicate::IsNull { col, .. } => vec![col],
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::In {
                col,
                values,
                negated,
            } => {
                let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                if *negated {
                    write!(f, "{col} NOT IN ({})", vals.join(", "))
                } else {
                    write!(f, "{col} IN ({})", vals.join(", "))
                }
            }
            Predicate::Between { col, low, high } => {
                write!(f, "{col} BETWEEN {low} AND {high}")
            }
            Predicate::IsNull { col, negated } => {
                if *negated {
                    write!(f, "{col} IS NOT NULL")
                } else {
                    write!(f, "{col} IS NULL")
                }
            }
        }
    }
}

/// An item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A scalar expression (column or aggregate).
    Expr(Expr),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr(e) => write!(f, "{e}"),
        }
    }
}

/// Sort direction of an `ORDER BY` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderDir {
    /// Ascending (the SQL default).
    Asc,
    /// Descending.
    Desc,
}

impl fmt::Display for OrderDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderDir::Asc => write!(f, "ASC"),
            OrderDir::Desc => write!(f, "DESC"),
        }
    }
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    /// The sort expression.
    pub expr: Expr,
    /// The sort direction.
    pub dir: OrderDir,
}

impl fmt::Display for OrderBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.expr, self.dir)
    }
}

/// A parsed SQL query.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Query {
    /// Whether `SELECT DISTINCT` was specified.
    pub distinct: bool,
    /// The `SELECT` list.
    pub select: Vec<SelectItem>,
    /// The `FROM` list.
    pub from: Vec<TableRef>,
    /// The conjunction of `WHERE` predicates (both filter and join conditions).
    pub predicates: Vec<Predicate>,
    /// The `GROUP BY` columns.
    pub group_by: Vec<ColumnRef>,
    /// The conjunction of `HAVING` predicates.
    pub having: Vec<Predicate>,
    /// The `ORDER BY` keys.
    pub order_by: Vec<OrderBy>,
    /// The `LIMIT`, if any.
    pub limit: Option<u64>,
}

impl Query {
    /// A new empty query (useful as a builder starting point in tests).
    pub fn new() -> Self {
        Query::default()
    }

    /// The filter (non-join) predicates of the `WHERE` clause.
    pub fn filter_predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| !p.is_join_condition())
    }

    /// The join conditions of the `WHERE` clause.
    pub fn join_conditions(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_join_condition())
    }

    /// Resolve a column qualifier (alias or table name) to the underlying
    /// relation name, if it is bound in the `FROM` clause.
    pub fn resolve_qualifier(&self, qualifier: &str) -> Option<&str> {
        self.from
            .iter()
            .find(|t| t.binding().eq_ignore_ascii_case(qualifier))
            .map(|t| t.table.as_str())
            .or_else(|| {
                self.from
                    .iter()
                    .find(|t| t.table.eq_ignore_ascii_case(qualifier))
                    .map(|t| t.table.as_str())
            })
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        let items: Vec<String> = self.select.iter().map(|s| s.to_string()).collect();
        write!(f, "{}", items.join(", "))?;
        if !self.from.is_empty() {
            let tables: Vec<String> = self.from.iter().map(|t| t.to_string()).collect();
            write!(f, " FROM {}", tables.join(", "))?;
        }
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
            write!(f, " WHERE {}", preds.join(" AND "))?;
        }
        if !self.group_by.is_empty() {
            let cols: Vec<String> = self.group_by.iter().map(|c| c.to_string()).collect();
            write!(f, " GROUP BY {}", cols.join(", "))?;
        }
        if !self.having.is_empty() {
            let preds: Vec<String> = self.having.iter().map(|p| p.to_string()).collect();
            write!(f, " HAVING {}", preds.join(" AND "))?;
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self.order_by.iter().map(|o| o.to_string()).collect();
            write!(f, " ORDER BY {}", keys.join(", "))?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_query() -> Query {
        Query {
            distinct: false,
            select: vec![SelectItem::Expr(Expr::Column(ColumnRef::qualified(
                "p", "title",
            )))],
            from: vec![
                TableRef::aliased("publication", "p"),
                TableRef::aliased("journal", "j"),
            ],
            predicates: vec![
                Predicate::Compare {
                    left: Expr::Column(ColumnRef::qualified("j", "name")),
                    op: BinOp::Eq,
                    right: Expr::Literal(Literal::String("TKDE".into())),
                },
                Predicate::Compare {
                    left: Expr::Column(ColumnRef::qualified("p", "year")),
                    op: BinOp::Gt,
                    right: Expr::Literal(Literal::Number(1995.0)),
                },
                Predicate::Compare {
                    left: Expr::Column(ColumnRef::qualified("j", "jid")),
                    op: BinOp::Eq,
                    right: Expr::Column(ColumnRef::qualified("p", "jid")),
                },
            ],
            ..Query::default()
        }
    }

    #[test]
    fn renders_example_5() {
        let q = example_query();
        assert_eq!(
            q.to_string(),
            "SELECT p.title FROM publication p, journal j \
             WHERE j.name = 'TKDE' AND p.year > 1995 AND j.jid = p.jid"
        );
    }

    #[test]
    fn distinguishes_join_conditions() {
        let q = example_query();
        assert_eq!(q.join_conditions().count(), 1);
        assert_eq!(q.filter_predicates().count(), 2);
    }

    #[test]
    fn resolves_qualifiers() {
        let q = example_query();
        assert_eq!(q.resolve_qualifier("p"), Some("publication"));
        assert_eq!(q.resolve_qualifier("journal"), Some("journal"));
        assert_eq!(q.resolve_qualifier("x"), None);
    }

    #[test]
    fn renders_aggregates_and_literals() {
        let agg = Expr::Aggregate {
            func: Aggregate::Count,
            distinct: true,
            arg: Some(ColumnRef::qualified("p", "pid")),
        };
        assert_eq!(agg.to_string(), "COUNT(DISTINCT p.pid)");
        let star = Expr::Aggregate {
            func: Aggregate::Count,
            distinct: false,
            arg: None,
        };
        assert_eq!(star.to_string(), "COUNT(*)");
        assert_eq!(Literal::Number(2000.0).to_string(), "2000");
        assert_eq!(Literal::Number(4.5).to_string(), "4.5");
    }

    #[test]
    fn binop_from_natural_language_words() {
        assert_eq!(BinOp::from_word("after"), Some(BinOp::Gt));
        assert_eq!(BinOp::from_word("Before"), Some(BinOp::Lt));
        assert_eq!(BinOp::from_word("banana"), None);
    }

    #[test]
    fn renders_between_in_and_null_predicates() {
        let between = Predicate::Between {
            col: ColumnRef::new("year"),
            low: Literal::Number(1995.0),
            high: Literal::Number(2005.0),
        };
        assert_eq!(between.to_string(), "year BETWEEN 1995 AND 2005");
        let inp = Predicate::In {
            col: ColumnRef::new("state"),
            values: vec![Literal::String("AZ".into()), Literal::String("NV".into())],
            negated: false,
        };
        assert_eq!(inp.to_string(), "state IN ('AZ', 'NV')");
        let isnull = Predicate::IsNull {
            col: ColumnRef::new("year"),
            negated: true,
        };
        assert_eq!(isnull.to_string(), "year IS NOT NULL");
    }
}
