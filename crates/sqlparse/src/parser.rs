//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};

/// Parse a single SQL query.
///
/// ```
/// use sqlparse::parse_query;
/// let q = parse_query("SELECT p.title FROM publication p WHERE p.year > 2000").unwrap();
/// assert_eq!(q.from.len(), 1);
/// assert_eq!(q.predicates.len(), 1);
/// ```
pub fn parse_query(sql: &str) -> ParseResult<Query> {
    let tokens = Lexer::tokenize(sql)?;
    let mut parser = Parser::new(tokens);
    let query = parser.parse_query()?;
    parser.expect_end()?;
    Ok(query)
}

/// The recursive-descent parser over a token stream.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Create a parser over a token stream (must be terminated by `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> ParseResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected keyword {kw}, found {}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> ParseResult<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {kind}, found {}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn parse_ident(&mut self) -> ParseResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {other}"),
                self.offset(),
            )),
        }
    }

    /// Verify the whole input was consumed (allowing a trailing semicolon).
    pub fn expect_end(&mut self) -> ParseResult<()> {
        self.eat(&TokenKind::Semicolon);
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("unexpected trailing input: {}", self.peek()),
                self.offset(),
            ))
        }
    }

    /// Parse a complete `SELECT` query.
    pub fn parse_query(&mut self) -> ParseResult<Query> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let select = self.parse_select_list()?;
        let from = if self.eat_keyword("FROM") {
            self.parse_from_list()?
        } else {
            Vec::new()
        };
        let predicates = if self.eat_keyword("WHERE") {
            self.parse_predicate_list()?
        } else {
            Vec::new()
        };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            self.parse_column_list()?
        } else {
            Vec::new()
        };
        let having = if self.eat_keyword("HAVING") {
            self.parse_predicate_list()?
        } else {
            Vec::new()
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            self.parse_order_by_list()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                TokenKind::NumberLit(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
                other => {
                    return Err(ParseError::new(
                        format!("expected integer LIMIT, found {other}"),
                        self.offset(),
                    ))
                }
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            predicates,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> ParseResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                // optional alias: `expr AS name` or bare identifier alias.
                if self.eat_keyword("AS") {
                    let _ = self.parse_ident()?;
                }
                items.push(SelectItem::Expr(expr));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_from_list(&mut self) -> ParseResult<Vec<TableRef>> {
        let mut tables = Vec::new();
        loop {
            let table = self.parse_ident()?;
            // An alias follows either an explicit `AS` or directly as a
            // bare identifier.
            let alias = if self.eat_keyword("AS") || matches!(self.peek(), TokenKind::Ident(_)) {
                Some(self.parse_ident()?)
            } else {
                None
            };
            tables.push(TableRef { table, alias });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(tables)
    }

    fn parse_column_list(&mut self) -> ParseResult<Vec<ColumnRef>> {
        let mut cols = Vec::new();
        loop {
            cols.push(self.parse_column_ref()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(cols)
    }

    fn parse_order_by_list(&mut self) -> ParseResult<Vec<OrderBy>> {
        let mut keys = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let dir = if self.eat_keyword("DESC") {
                OrderDir::Desc
            } else {
                self.eat_keyword("ASC");
                OrderDir::Asc
            };
            keys.push(OrderBy { expr, dir });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(keys)
    }

    fn parse_column_ref(&mut self) -> ParseResult<ColumnRef> {
        let first = self.parse_ident()?;
        if self.eat(&TokenKind::Dot) {
            let column = self.parse_ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    /// Parse a scalar expression: aggregate call, column reference or literal.
    fn parse_expr(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            TokenKind::Keyword(kw) if Aggregate::from_name(&kw).is_some() => {
                let func = Aggregate::from_name(&kw).expect("checked above");
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let distinct = self.eat_keyword("DISTINCT");
                let arg = if self.eat(&TokenKind::Star) {
                    None
                } else {
                    Some(self.parse_column_ref()?)
                };
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Aggregate {
                    func,
                    distinct,
                    arg,
                })
            }
            TokenKind::NumberLit(n) => {
                self.bump();
                Ok(Expr::Literal(Literal::Number(n)))
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Keyword(kw) if kw == "NULL" => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Ident(_) => Ok(Expr::Column(self.parse_column_ref()?)),
            other => Err(ParseError::new(
                format!("expected expression, found {other}"),
                self.offset(),
            )),
        }
    }

    fn parse_predicate_list(&mut self) -> ParseResult<Vec<Predicate>> {
        let mut predicates = Vec::new();
        loop {
            predicates.push(self.parse_predicate()?);
            if !self.eat_keyword("AND") {
                break;
            }
        }
        Ok(predicates)
    }

    fn parse_predicate(&mut self) -> ParseResult<Predicate> {
        let left = self.parse_expr()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            let col = match left {
                Expr::Column(c) => c,
                other => {
                    return Err(ParseError::new(
                        format!("IS NULL requires a column, found {other}"),
                        self.offset(),
                    ))
                }
            };
            return Ok(Predicate::IsNull { col, negated });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            let col = match left {
                Expr::Column(c) => c,
                other => {
                    return Err(ParseError::new(
                        format!("IN requires a column, found {other}"),
                        self.offset(),
                    ))
                }
            };
            self.expect(&TokenKind::LParen)?;
            let mut values = Vec::new();
            loop {
                match self.bump() {
                    TokenKind::NumberLit(n) => values.push(Literal::Number(n)),
                    TokenKind::StringLit(s) => values.push(Literal::String(s)),
                    other => {
                        return Err(ParseError::new(
                            format!("expected literal in IN list, found {other}"),
                            self.offset(),
                        ))
                    }
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Predicate::In {
                col,
                values,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let col = match left {
                Expr::Column(c) => c,
                other => {
                    return Err(ParseError::new(
                        format!("BETWEEN requires a column, found {other}"),
                        self.offset(),
                    ))
                }
            };
            let low = self.parse_literal()?;
            self.expect_keyword("AND")?;
            let high = self.parse_literal()?;
            return Ok(Predicate::Between { col, low, high });
        }
        if negated {
            return Err(ParseError::new(
                "NOT is only supported before IN / BETWEEN".to_string(),
                self.offset(),
            ));
        }
        let op = match self.bump() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            TokenKind::Keyword(kw) if kw == "LIKE" => BinOp::Like,
            other => {
                return Err(ParseError::new(
                    format!("expected comparison operator, found {other}"),
                    self.offset(),
                ))
            }
        };
        let right = self.parse_expr()?;
        Ok(Predicate::Compare { left, op, right })
    }

    fn parse_literal(&mut self) -> ParseResult<Literal> {
        match self.bump() {
            TokenKind::NumberLit(n) => Ok(Literal::Number(n)),
            TokenKind::StringLit(s) => Ok(Literal::String(s)),
            TokenKind::Keyword(kw) if kw == "NULL" => Ok(Literal::Null),
            other => Err(ParseError::new(
                format!("expected literal, found {other}"),
                self.offset(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_1_query() {
        let sql = "SELECT p.title \
                   FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d \
                   WHERE d.name = 'Databases' \
                   AND p.pid = pk.pid AND k.kid = pk.kid \
                   AND dk.kid = k.kid AND dk.did = d.did";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.from.len(), 5);
        assert_eq!(q.predicates.len(), 5);
        assert_eq!(q.join_conditions().count(), 4);
        assert_eq!(q.filter_predicates().count(), 1);
    }

    #[test]
    fn parses_self_join_example_7() {
        let sql = "SELECT p.title \
                   FROM author a1, author a2, publication p, writes w1, writes w2 \
                   WHERE a1.name = 'John' AND a2.name = 'Jane' \
                   AND a1.aid = w1.aid AND a2.aid = w2.aid \
                   AND p.pid = w1.pid AND p.pid = w2.pid";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.from.len(), 5);
        let authors: Vec<_> = q.from.iter().filter(|t| t.table == "author").collect();
        assert_eq!(authors.len(), 2);
        assert_eq!(q.join_conditions().count(), 4);
    }

    #[test]
    fn parses_aggregates_group_by_having_order_limit() {
        let sql = "SELECT a.name, COUNT(DISTINCT p.pid) FROM author a, writes w, publication p \
                   WHERE a.aid = w.aid AND w.pid = p.pid \
                   GROUP BY a.name HAVING COUNT(p.pid) > 5 \
                   ORDER BY COUNT(p.pid) DESC LIMIT 10";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.having.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.order_by[0].dir, OrderDir::Desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_between_in_like_null() {
        let sql = "SELECT b.name FROM business b \
                   WHERE b.stars BETWEEN 3 AND 5 AND b.state IN ('AZ', 'NV') \
                   AND b.name LIKE 'Taco' AND b.city IS NOT NULL";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.predicates.len(), 4);
        assert!(matches!(q.predicates[0], Predicate::Between { .. }));
        assert!(matches!(q.predicates[1], Predicate::In { .. }));
        assert!(matches!(
            q.predicates[2],
            Predicate::Compare {
                op: BinOp::Like,
                ..
            }
        ));
        assert!(matches!(
            q.predicates[3],
            Predicate::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn parses_distinct_and_wildcard() {
        let q = parse_query("SELECT DISTINCT * FROM movie").unwrap();
        assert!(q.distinct);
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
        assert_eq!(q.from, vec![TableRef::new("movie")]);
    }

    #[test]
    fn parses_as_alias_and_trailing_semicolon() {
        let q = parse_query("SELECT p.title AS t FROM publication AS p;").unwrap();
        assert_eq!(q.from[0].alias.as_deref(), Some("p"));
    }

    #[test]
    fn roundtrip_display_parse() {
        let sql = "SELECT p.title FROM journal j, publication p \
                   WHERE j.name = 'TKDE' AND p.year > 1995 AND j.jid = p.jid";
        let q = parse_query(sql).unwrap();
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("SELECT FROM WHERE").is_err());
        assert!(parse_query("FROM publication").is_err());
        assert!(parse_query("SELECT a b c").is_err());
        assert!(parse_query("SELECT x FROM t WHERE").is_err());
        assert!(parse_query("SELECT x FROM t WHERE a = 1 extra junk").is_err());
    }

    #[test]
    fn rejects_unsupported_not() {
        assert!(parse_query("SELECT x FROM t WHERE NOT a = 1").is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse_query("SELECT x FROM t WHERE a == 1").unwrap_err();
        assert!(err.offset >= 24, "offset was {}", err.offset);
    }
}
