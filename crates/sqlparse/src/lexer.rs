//! The SQL lexer: turns an input string into a stream of [`Token`]s.

use crate::error::{ParseError, ParseResult};
use crate::token::{is_keyword, Token, TokenKind};

/// A streaming lexer over a SQL string.
#[derive(Debug)]
pub struct Lexer<'a> {
    input: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over the input.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input,
            chars: input.chars().collect(),
            pos: 0,
        }
    }

    /// Lex the whole input into a vector of tokens, terminated by
    /// [`TokenKind::Eof`].
    pub fn tokenize(input: &'a str) -> ParseResult<Vec<Token>> {
        let mut lexer = Lexer::new(input);
        let mut out = Vec::new();
        loop {
            let tok = lexer.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> ParseResult<Token> {
        self.skip_whitespace();
        let offset = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let kind = match c {
            ',' => {
                self.bump();
                TokenKind::Comma
            }
            '.' => {
                self.bump();
                TokenKind::Dot
            }
            '(' => {
                self.bump();
                TokenKind::LParen
            }
            ')' => {
                self.bump();
                TokenKind::RParen
            }
            '*' => {
                self.bump();
                TokenKind::Star
            }
            ';' => {
                self.bump();
                TokenKind::Semicolon
            }
            '=' => {
                self.bump();
                TokenKind::Eq
            }
            '!' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new("expected '=' after '!'", offset));
                }
            }
            '<' => {
                self.bump();
                match self.peek() {
                    Some('=') => {
                        self.bump();
                        TokenKind::LtEq
                    }
                    Some('>') => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            '>' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            '\'' | '"' | '\u{2018}' | '\u{2019}' => {
                // Accept both straight and curly quotes (the paper's text uses
                // curly quotes in its SQL listings).
                let quote = if c == '"' { '"' } else { '\'' };
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(q)
                            if q == quote
                                || (quote == '\'' && (q == '\u{2019}' || q == '\u{2018}')) =>
                        {
                            break
                        }
                        Some(ch) => s.push(ch),
                        None => return Err(ParseError::new("unterminated string literal", offset)),
                    }
                }
                TokenKind::StringLit(s)
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(ch) = self.peek() {
                    if ch.is_ascii_digit()
                        || (ch == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit()))
                    {
                        s.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                let value: f64 = s
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid number '{s}'"), offset))?;
                TokenKind::NumberLit(value)
            }
            c if c.is_alphabetic() || c == '_' || c == '?' => {
                let mut s = String::new();
                if c == '?' {
                    // placeholder identifiers (?val, ?op) appear only in
                    // obscured fragment text, but accepting them makes the
                    // lexer reusable for fragment round-trips.
                    s.push(c);
                    self.bump();
                }
                while let Some(ch) = self.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(ParseError::new(
                        format!("unexpected character '{c}'"),
                        offset,
                    ));
                }
                if is_keyword(&s) {
                    TokenKind::Keyword(s.to_uppercase())
                } else {
                    TokenKind::Ident(s)
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{other}'"),
                    offset,
                ))
            }
        };
        Ok(Token { kind, offset })
    }

    /// The original input string.
    pub fn input(&self) -> &str {
        self.input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT p.title FROM publication p");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Ident("p".into()),
                TokenKind::Dot,
                TokenKind::Ident("title".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("publication".into()),
                TokenKind::Ident("p".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("a >= 5 AND b <> 3 AND c != 2 AND d <= 1");
        assert!(ks.contains(&TokenKind::GtEq));
        assert!(ks.contains(&TokenKind::LtEq));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::NotEq).count(), 2);
    }

    #[test]
    fn lexes_string_literals() {
        let ks = kinds("name = 'Databases'");
        assert!(ks.contains(&TokenKind::StringLit("Databases".into())));
        let ks = kinds("name = \"Databases\"");
        assert!(ks.contains(&TokenKind::StringLit("Databases".into())));
    }

    #[test]
    fn lexes_curly_quotes() {
        let ks = kinds("d.name = \u{2018}Databases\u{2019}");
        assert!(ks.contains(&TokenKind::StringLit("Databases".into())));
    }

    #[test]
    fn lexes_numbers() {
        let ks = kinds("year > 2000 AND rating >= 4.5");
        assert!(ks.contains(&TokenKind::NumberLit(2000.0)));
        assert!(ks.contains(&TokenKind::NumberLit(4.5)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let ks = kinds("select x from t");
        assert_eq!(ks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(ks[2], TokenKind::Keyword("FROM".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(Lexer::tokenize("name = 'oops").is_err());
    }

    #[test]
    fn reports_offsets() {
        let toks = Lexer::tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
