//! A deterministic word-embedding model.
//!
//! Substitutes for word2vec / GloVe in the Pipeline baseline and in
//! Templar's `sim_text` (Algorithm 3).  Vectors are built from hashed
//! character n-grams so that morphologically similar words (e.g. `review`
//! and `reviews`) land close together, and the overall pairwise similarity
//! is blended with the [`SynonymLexicon`](crate::lexicon::SynonymLexicon)
//! so that domain synonyms (e.g. `papers` / `publication`) score highly even
//! when they share no characters.
//!
//! The model exposes the same interface the paper's systems need: a
//! `similarity(a, b)` in `[0, 1]` for word pairs and phrase pairs (Pipeline
//! normalises word2vec's `[-1, 1]` cosine into `[0, 1]`, and so do we).

use crate::lexicon::SynonymLexicon;
use crate::stem::porter_stem;
use crate::tokenize::split_identifier;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Dimensionality of the synthetic embedding space.
pub const EMBEDDING_DIM: usize = 64;

/// A dense vector representing a word or phrase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseVector {
    values: [f64; EMBEDDING_DIM],
}

impl Default for PhraseVector {
    fn default() -> Self {
        PhraseVector {
            values: [0.0; EMBEDDING_DIM],
        }
    }
}

impl PhraseVector {
    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Component-wise addition.
    pub fn add_assign(&mut self, other: &PhraseVector) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }

    /// Scale all components by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in self.values.iter_mut() {
            *v *= s;
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Cosine similarity in `[-1, 1]`; zero if either vector is zero.
    pub fn cosine(&self, other: &PhraseVector) -> f64 {
        let dot: f64 = self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| a * b)
            .sum();
        let denom = self.norm() * other.norm();
        if denom <= f64::EPSILON {
            0.0
        } else {
            (dot / denom).clamp(-1.0, 1.0)
        }
    }

    /// Access the raw components (mainly for tests).
    pub fn components(&self) -> &[f64; EMBEDDING_DIM] {
        &self.values
    }
}

/// FNV-1a hash, used to deterministically map character n-grams to
/// embedding dimensions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Upper bound on memoized word vectors.  Schema vocabularies and common
/// keyword words fit comfortably; an adversarial stream of unique words
/// cannot grow the cache past this.
const VECTOR_CACHE_CAP: usize = 4096;

/// Upper bound on memoized *phrase* vectors.  Phrases (multi-word keywords,
/// split identifiers) are more varied than single words, but a serving
/// deployment still re-embeds the same schema-element names and recurring
/// keyword phrases on every request.
const PHRASE_CACHE_CAP: usize = 2048;

/// The deterministic word-embedding model.
///
/// Construction is cheap; the model owns a [`SynonymLexicon`] that supplies
/// domain knowledge (the role the Google-News corpus plays in the paper).
///
/// Word vectors are deterministic functions of the word, so the model
/// memoizes them (bounded, thread-safe): under serving traffic the same
/// schema-element words are embedded for every candidate of every request,
/// and the memo turns those repeats into a map hit plus a 64-float copy.
#[derive(Debug)]
pub struct WordModel {
    lexicon: SynonymLexicon,
    /// Blend factor between lexicon similarity and character-level cosine.
    /// `1.0` means lexicon-only, `0.0` character-only.
    lexicon_weight: f64,
    /// Bounded word → vector memo.  A lock-poisoning panic elsewhere only
    /// disables the memo (lookups fall through to recomputation).
    vector_cache: RwLock<HashMap<String, PhraseVector>>,
    /// Bounded phrase → vector memo (same policy as the word memo; a
    /// phrase vector is a pure function of the phrase text).
    phrase_cache: RwLock<HashMap<String, PhraseVector>>,
    /// Word-memo hit/miss counters, observable for tuning and tests.
    word_hits: AtomicU64,
    word_misses: AtomicU64,
    /// Phrase-memo hit/miss counters, observable for tuning and tests.
    phrase_hits: AtomicU64,
    phrase_misses: AtomicU64,
}

impl Default for WordModel {
    fn default() -> Self {
        Self::with_lexicon(SynonymLexicon::builtin())
    }
}

impl Clone for WordModel {
    fn clone(&self) -> Self {
        WordModel {
            lexicon: self.lexicon.clone(),
            lexicon_weight: self.lexicon_weight,
            // Carry the warmth over: a cloned model (snapshot refresh) starts
            // with the words and phrases the previous snapshot already
            // embedded.  Counters restart: they describe one instance's
            // traffic, not its lineage's.
            vector_cache: RwLock::new(
                self.vector_cache
                    .read()
                    .map(|cache| cache.clone())
                    .unwrap_or_default(),
            ),
            phrase_cache: RwLock::new(
                self.phrase_cache
                    .read()
                    .map(|cache| cache.clone())
                    .unwrap_or_default(),
            ),
            word_hits: AtomicU64::new(0),
            word_misses: AtomicU64::new(0),
            phrase_hits: AtomicU64::new(0),
            phrase_misses: AtomicU64::new(0),
        }
    }
}

impl WordModel {
    /// Build the default model with the built-in benchmark lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a model around a custom lexicon.
    pub fn with_lexicon(lexicon: SynonymLexicon) -> Self {
        WordModel {
            lexicon,
            lexicon_weight: 0.75,
            vector_cache: RwLock::new(HashMap::new()),
            phrase_cache: RwLock::new(HashMap::new()),
            word_hits: AtomicU64::new(0),
            word_misses: AtomicU64::new(0),
            phrase_hits: AtomicU64::new(0),
            phrase_misses: AtomicU64::new(0),
        }
    }

    /// Build a model that ignores the lexicon entirely (character n-grams
    /// only); useful for ablations and tests.
    pub fn without_lexicon() -> Self {
        WordModel {
            lexicon: SynonymLexicon::new(),
            lexicon_weight: 0.0,
            vector_cache: RwLock::new(HashMap::new()),
            phrase_cache: RwLock::new(HashMap::new()),
            word_hits: AtomicU64::new(0),
            word_misses: AtomicU64::new(0),
            phrase_hits: AtomicU64::new(0),
            phrase_misses: AtomicU64::new(0),
        }
    }

    /// Access the underlying lexicon.
    pub fn lexicon(&self) -> &SynonymLexicon {
        &self.lexicon
    }

    /// Embed a single word into the synthetic vector space using hashed
    /// character n-grams (n = 2..=4) of the *stemmed* word plus the whole
    /// stem, mirroring fastText-style subword embeddings.  Memoized: the
    /// embedding is a pure function of the word.
    pub fn word_vector(&self, word: &str) -> PhraseVector {
        if let Ok(cache) = self.vector_cache.read() {
            if let Some(hit) = cache.get(word) {
                self.word_hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        self.word_misses.fetch_add(1, Ordering::Relaxed);
        let vector = self.compute_word_vector(word);
        if let Ok(mut cache) = self.vector_cache.write() {
            if cache.len() < VECTOR_CACHE_CAP {
                cache.insert(word.to_string(), vector.clone());
            }
        }
        vector
    }

    fn compute_word_vector(&self, word: &str) -> PhraseVector {
        let stem = porter_stem(&word.to_lowercase());
        let padded = format!("^{stem}$");
        let bytes = padded.as_bytes();
        let mut vec = PhraseVector::zero();
        let mut push = |gram: &[u8]| {
            let h = fnv1a(gram);
            let dim = (h % EMBEDDING_DIM as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            vec.values[dim] += sign;
        };
        for n in 2..=4usize {
            if bytes.len() < n {
                continue;
            }
            for start in 0..=(bytes.len() - n) {
                push(&bytes[start..start + n]);
            }
        }
        push(bytes);
        let norm = vec.norm();
        if norm > f64::EPSILON {
            vec.scale(1.0 / norm);
        }
        vec
    }

    /// Embed a phrase (or identifier) by averaging its word vectors.  SQL
    /// identifiers are split on underscores / camel-case first.
    ///
    /// Memoized at the phrase level (bounded, thread-safe): the splitting,
    /// per-word lookups and re-normalisation used to run on every call even
    /// though every word vector was already cached.  Hit/miss counts are
    /// observable via [`WordModel::phrase_cache_stats`].
    pub fn phrase_vector(&self, phrase: &str) -> PhraseVector {
        if let Ok(cache) = self.phrase_cache.read() {
            if let Some(hit) = cache.get(phrase) {
                self.phrase_hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        self.phrase_misses.fetch_add(1, Ordering::Relaxed);
        let vector = self.compute_phrase_vector(phrase);
        if let Ok(mut cache) = self.phrase_cache.write() {
            if cache.len() < PHRASE_CACHE_CAP {
                cache.insert(phrase.to_string(), vector.clone());
            }
        }
        vector
    }

    fn compute_phrase_vector(&self, phrase: &str) -> PhraseVector {
        let words = split_identifier(phrase);
        if words.is_empty() {
            return PhraseVector::zero();
        }
        let mut acc = PhraseVector::zero();
        for w in &words {
            acc.add_assign(&self.word_vector(w));
        }
        acc.scale(1.0 / words.len() as f64);
        acc
    }

    /// Word-memo `(hits, misses)` since this instance was constructed.
    pub fn word_cache_stats(&self) -> (u64, u64) {
        (
            self.word_hits.load(Ordering::Relaxed),
            self.word_misses.load(Ordering::Relaxed),
        )
    }

    /// Phrase-memo `(hits, misses)` since this instance was constructed.
    pub fn phrase_cache_stats(&self) -> (u64, u64) {
        (
            self.phrase_hits.load(Ordering::Relaxed),
            self.phrase_misses.load(Ordering::Relaxed),
        )
    }

    /// Character-level similarity between two words, normalised to `[0, 1]`.
    fn char_similarity(&self, a: &str, b: &str) -> f64 {
        let cos = self.word_vector(a).cosine(&self.word_vector(b));
        (cos + 1.0) / 2.0
    }

    /// Similarity between two single words in `[0, 1]`.
    ///
    /// The lexicon dominates when it knows both words; otherwise the hashed
    /// n-gram cosine provides a graceful fallback (so `reviewer` vs `review`
    /// still scores well).
    pub fn word_similarity(&self, a: &str, b: &str) -> f64 {
        let a_l = a.to_lowercase();
        let b_l = b.to_lowercase();
        if a_l == b_l || porter_stem(&a_l) == porter_stem(&b_l) {
            return 1.0;
        }
        let lex = self.lexicon.word_similarity(&a_l, &b_l);
        let chars = self.char_similarity(&a_l, &b_l);
        if lex > 0.0 {
            (self.lexicon_weight * lex + (1.0 - self.lexicon_weight) * chars).clamp(0.0, 1.0)
        } else {
            // Without lexicon evidence, damp the character similarity so that
            // unrelated words do not look spuriously similar.
            (chars * 0.6).clamp(0.0, 1.0)
        }
    }

    /// Similarity between two phrases in `[0, 1]`.
    ///
    /// Implemented as a greedy best-match alignment: each word of the shorter
    /// phrase is matched to its most similar word in the other phrase and the
    /// scores are averaged.  This mirrors how the Pipeline baseline compares
    /// a keyword phrase against a (possibly multi-word) schema element name.
    pub fn phrase_similarity(&self, a: &str, b: &str) -> f64 {
        let wa = split_identifier(a);
        let wb = split_identifier(b);
        if wa.is_empty() || wb.is_empty() {
            return 0.0;
        }
        let (short, long) = if wa.len() <= wb.len() {
            (&wa, &wb)
        } else {
            (&wb, &wa)
        };
        let mut total = 0.0;
        for s in short.iter() {
            let best = long
                .iter()
                .map(|l| self.word_similarity(s, l))
                .fold(0.0f64, f64::max);
            total += best;
        }
        let coverage_penalty = short.len() as f64 / long.len() as f64;
        let mean = total / short.len() as f64;
        // Penalise length mismatch mildly: "papers" vs "publication" should
        // not be punished, but a one-word keyword matching a five-word value
        // should score lower than an exact value match.
        (mean * (0.75 + 0.25 * coverage_penalty)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_words_score_one() {
        let m = WordModel::new();
        assert_eq!(m.word_similarity("papers", "Papers"), 1.0);
        assert_eq!(m.word_similarity("review", "reviews"), 1.0); // same stem
    }

    #[test]
    fn synonym_beats_unrelated() {
        let m = WordModel::new();
        let syn = m.word_similarity("papers", "publication");
        let unrelated = m.word_similarity("papers", "city");
        assert!(syn > 0.7, "synonym similarity too low: {syn}");
        assert!(
            unrelated < 0.5,
            "unrelated similarity too high: {unrelated}"
        );
        assert!(syn > unrelated);
    }

    #[test]
    fn ambiguity_between_publication_and_journal() {
        // The property that drives the paper's Example 1: both candidates are
        // plausibly similar to "papers"; the (wrong) journal mapping is close
        // enough that a similarity-only mapper can pick it.
        let m = WordModel::new();
        let pub_sim = m.word_similarity("papers", "publication");
        let journal_sim = m.word_similarity("papers", "journal");
        assert!(journal_sim > 0.4);
        assert!(pub_sim > journal_sim);
        assert!(pub_sim - journal_sim < 0.45);
    }

    #[test]
    fn vectors_are_deterministic() {
        let m = WordModel::new();
        let v1 = m.word_vector("restaurant");
        let v2 = m.word_vector("restaurant");
        assert_eq!(v1, v2);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let m = WordModel::new();
        for w in ["restaurant", "publication", "director", "x"] {
            let n = m.word_vector(w).norm();
            assert!((n - 1.0).abs() < 1e-9 || n == 0.0, "word {w} norm {n}");
        }
    }

    #[test]
    fn phrase_similarity_handles_identifiers() {
        let m = WordModel::new();
        let sim = m.phrase_similarity("restaurant businesses", "business");
        assert!(sim > 0.6, "got {sim}");
        let sim2 = m.phrase_similarity("papers", "publication_keyword");
        assert!(sim2 > 0.4, "got {sim2}");
    }

    #[test]
    fn phrase_similarity_is_symmetric() {
        let m = WordModel::new();
        for (a, b) in [
            ("restaurant businesses", "business"),
            ("papers", "journal name"),
            ("movie Saving Private Ryan", "title"),
        ] {
            let ab = m.phrase_similarity(a, b);
            let ba = m.phrase_similarity(b, a);
            assert!((ab - ba).abs() < 1e-12, "{a} vs {b}: {ab} != {ba}");
        }
    }

    #[test]
    fn similarity_in_unit_interval() {
        let m = WordModel::new();
        for (a, b) in [
            ("papers", "journal"),
            ("after 2000", "year"),
            ("", "publication"),
            ("zzzz", "qqqq"),
        ] {
            let s = m.phrase_similarity(a, b);
            assert!((0.0..=1.0).contains(&s), "{a} vs {b} -> {s}");
        }
    }

    #[test]
    fn phrase_vectors_are_memoized_with_observable_hit_rate() {
        let m = WordModel::new();
        assert_eq!(m.phrase_cache_stats(), (0, 0));
        let first = m.phrase_vector("restaurant businesses");
        assert_eq!(m.phrase_cache_stats(), (0, 1));
        let second = m.phrase_vector("restaurant businesses");
        assert_eq!(m.phrase_cache_stats(), (1, 1));
        assert_eq!(first, second, "memo must return the identical vector");
        // The memo is keyed by the exact phrase text; a different phrase is
        // a fresh miss and an uncached computation agrees with the memoized
        // path's output.
        let other = m.phrase_vector("business");
        assert_eq!(m.phrase_cache_stats(), (1, 2));
        assert_eq!(other, m.compute_phrase_vector("business"));
        // Cloned models inherit warmth but report their own traffic.
        let cloned = m.clone();
        assert_eq!(cloned.phrase_cache_stats(), (0, 0));
        cloned.phrase_vector("restaurant businesses");
        assert_eq!(cloned.phrase_cache_stats(), (1, 0), "clone starts warm");
    }

    #[test]
    fn word_vectors_are_memoized_with_observable_hit_rate() {
        let m = WordModel::new();
        assert_eq!(m.word_cache_stats(), (0, 0));
        let first = m.word_vector("restaurant");
        assert_eq!(m.word_cache_stats(), (0, 1));
        let second = m.word_vector("restaurant");
        assert_eq!(m.word_cache_stats(), (1, 1));
        assert_eq!(first, second, "memo must return the identical vector");
        // Cloned models inherit warmth but report their own traffic.
        let cloned = m.clone();
        assert_eq!(cloned.word_cache_stats(), (0, 0));
        cloned.word_vector("restaurant");
        assert_eq!(cloned.word_cache_stats(), (1, 0), "clone starts warm");
    }

    #[test]
    fn model_without_lexicon_still_matches_morphology() {
        let m = WordModel::without_lexicon();
        let close = m.word_similarity("directing", "director");
        let far = m.word_similarity("directing", "cuisine");
        assert!(close > far);
    }

    #[test]
    fn empty_phrase_has_zero_similarity() {
        let m = WordModel::new();
        assert_eq!(m.phrase_similarity("", "publication"), 0.0);
        assert_eq!(m.phrase_similarity("papers", ""), 0.0);
    }
}
