//! The similarity interface consumed by the keyword mapper (Algorithm 3).
//!
//! Templar is agnostic to the underlying word-similarity model (the paper
//! mentions word2vec and GloVe interchangeably); this module defines the
//! [`SimilarityModel`] trait so that the core crate can be tested against
//! mock models, and provides [`TextSimilarity`], the production
//! implementation backed by [`WordModel`](crate::embedding::WordModel).

use crate::embedding::WordModel;

/// A word/phrase similarity oracle producing scores in `[0, 1]`.
pub trait SimilarityModel: Send + Sync {
    /// Similarity between a natural-language phrase and a database-derived
    /// string (schema element name or text value), in `[0, 1]`.
    fn similarity(&self, phrase: &str, target: &str) -> f64;
}

/// Production similarity model: phrase-level similarity over the
/// deterministic embedding model, with a small bonus for exact and
/// stem-exact matches so that literal value references
/// (e.g. `"TKDE"` vs the stored value `TKDE`) reach the exact-match pruning
/// threshold of Algorithm 3.
#[derive(Debug, Clone, Default)]
pub struct TextSimilarity {
    model: WordModel,
}

impl TextSimilarity {
    /// Build the default model (built-in lexicon).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an explicit word model.
    pub fn with_model(model: WordModel) -> Self {
        TextSimilarity { model }
    }

    /// Access the underlying word model.
    pub fn model(&self) -> &WordModel {
        &self.model
    }
}

impl SimilarityModel for TextSimilarity {
    fn similarity(&self, phrase: &str, target: &str) -> f64 {
        if phrase.is_empty() || target.is_empty() {
            return 0.0;
        }
        if phrase.eq_ignore_ascii_case(target) {
            return 1.0;
        }
        self.model.phrase_similarity(phrase, target)
    }
}

/// A fixed similarity model for tests: returns the value stored for the pair
/// (in either order) or a default.
#[derive(Debug, Clone, Default)]
pub struct FixedSimilarity {
    pairs: Vec<(String, String, f64)>,
    default: f64,
}

impl FixedSimilarity {
    /// Create an empty fixed model with the given default score.
    pub fn with_default(default: f64) -> Self {
        FixedSimilarity {
            pairs: Vec::new(),
            default,
        }
    }

    /// Register a similarity for a pair of strings (symmetric).
    pub fn set(&mut self, a: &str, b: &str, sim: f64) -> &mut Self {
        self.pairs.push((a.to_lowercase(), b.to_lowercase(), sim));
        self
    }
}

impl SimilarityModel for FixedSimilarity {
    fn similarity(&self, phrase: &str, target: &str) -> f64 {
        let p = phrase.to_lowercase();
        let t = target.to_lowercase();
        if p == t {
            return 1.0;
        }
        for (a, b, s) in &self.pairs {
            if (*a == p && *b == t) || (*a == t && *b == p) {
                return *s;
            }
        }
        self.default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_scores_one() {
        let sim = TextSimilarity::new();
        assert_eq!(sim.similarity("TKDE", "tkde"), 1.0);
        assert_eq!(sim.similarity("Databases", "Databases"), 1.0);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let sim = TextSimilarity::new();
        assert_eq!(sim.similarity("", "journal"), 0.0);
        assert_eq!(sim.similarity("papers", ""), 0.0);
    }

    #[test]
    fn schema_element_similarity_is_sensible() {
        let sim = TextSimilarity::new();
        let good = sim.similarity("papers", "publication");
        let bad = sim.similarity("papers", "organization");
        assert!(good > bad, "{good} vs {bad}");
    }

    #[test]
    fn fixed_similarity_lookup() {
        let mut fixed = FixedSimilarity::with_default(0.1);
        fixed.set("papers", "publication", 0.9);
        assert_eq!(fixed.similarity("Papers", "publication"), 0.9);
        assert_eq!(fixed.similarity("publication", "papers"), 0.9);
        assert_eq!(fixed.similarity("papers", "city"), 0.1);
        assert_eq!(fixed.similarity("papers", "papers"), 1.0);
    }
}
