//! Natural-language processing substrate for the Templar reproduction.
//!
//! The paper relies on three pieces of off-the-shelf NLP technology:
//!
//! 1. a **tokenizer** that splits natural-language keywords and SQL
//!    identifiers into word tokens,
//! 2. the **Porter stemmer** used to build the boolean full-text search
//!    queries of Algorithm 2 (`findTextAttrs`), and
//! 3. a **word-embedding similarity model** (word2vec / GloVe) producing a
//!    `[0, 1]` similarity between a keyword phrase and a database element.
//!
//! None of these are available as mature offline Rust libraries, so this
//! crate implements all three from scratch.  The embedding model is a
//! *deterministic substitute* for word2vec: vectors are derived from hashed
//! character n-grams and blended with a curated synonym lexicon so that the
//! ambiguity structure that motivates the paper (e.g. *papers* being close to
//! both `publication` and `journal`) is preserved while keeping every
//! experiment reproducible.  See `DESIGN.md` for the substitution argument.

pub mod embedding;
pub mod lexicon;
pub mod similarity;
pub mod stem;
pub mod tokenize;

pub use embedding::{PhraseVector, WordModel, EMBEDDING_DIM};
pub use lexicon::SynonymLexicon;
pub use similarity::{FixedSimilarity, SimilarityModel, TextSimilarity};
pub use stem::porter_stem;
pub use tokenize::{
    contains_number, extract_numbers, split_identifier, tokenize, tokenize_lower, Token, TokenKind,
};
