//! Tokenization of natural-language keyword phrases and SQL identifiers.
//!
//! Keywords handed to the keyword mapper (Algorithm 2 of the paper) are short
//! phrases such as `"restaurant businesses"`, `"after 2000"` or
//! `"movie Saving Private Ryan"`.  Database element names are SQL identifiers
//! such as `publication_keyword` or `domain.name`.  Both are reduced to a
//! sequence of lower-case word tokens; numeric tokens are recognised so that
//! Algorithm 2 can route keywords containing numbers to numeric predicates.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A run of alphabetic characters (`papers`, `after`).
    Word,
    /// A run of digits, optionally with a decimal point (`2000`, `4.5`).
    Number,
}

/// A single token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// The token text, lower-cased for [`TokenKind::Word`] tokens.
    pub text: String,
    /// The lexical class of the token.
    pub kind: TokenKind,
}

impl Token {
    /// Create a word token (lower-casing the input).
    pub fn word(text: &str) -> Self {
        Token {
            text: text.to_lowercase(),
            kind: TokenKind::Word,
        }
    }

    /// Create a number token.
    pub fn number(text: &str) -> Self {
        Token {
            text: text.to_string(),
            kind: TokenKind::Number,
        }
    }

    /// True when the token is a number.
    pub fn is_number(&self) -> bool {
        self.kind == TokenKind::Number
    }
}

/// Tokenize a natural-language phrase or SQL identifier into word and number
/// tokens.
///
/// Splitting happens on whitespace, punctuation, underscores and
/// lower-to-upper camel-case boundaries.  Word tokens are lower-cased; number
/// tokens keep their textual form (so `"4.5"` stays `"4.5"`).
///
/// ```
/// use nlp::tokenize::{tokenize, TokenKind};
/// let toks = tokenize("after 2000");
/// assert_eq!(toks.len(), 2);
/// assert_eq!(toks[0].text, "after");
/// assert_eq!(toks[1].kind, TokenKind::Number);
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_digit() {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || (chars[i] == '.'
                        && !seen_dot
                        && i + 1 < chars.len()
                        && chars[i + 1].is_ascii_digit()))
            {
                if chars[i] == '.' {
                    seen_dot = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            tokens.push(Token::number(&text));
        } else if c.is_alphabetic() {
            let start = i;
            while i < chars.len() && chars[i].is_alphabetic() {
                // break on camel-case boundary: a lowercase char followed by
                // an uppercase char ends the current token.
                if i > start && chars[i].is_uppercase() && chars[i - 1].is_lowercase() {
                    break;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            tokens.push(Token::word(&text));
        } else {
            // punctuation, whitespace, underscores: skip.
            i += 1;
        }
    }
    tokens
}

/// Tokenize and return only the lower-cased token texts.
pub fn tokenize_lower(input: &str) -> Vec<String> {
    tokenize(input).into_iter().map(|t| t.text).collect()
}

/// Split a SQL identifier (snake_case or camelCase) into its constituent
/// lower-case words.
///
/// ```
/// use nlp::tokenize::split_identifier;
/// assert_eq!(split_identifier("publication_keyword"), vec!["publication", "keyword"]);
/// assert_eq!(split_identifier("reviewCount"), vec!["review", "count"]);
/// ```
pub fn split_identifier(ident: &str) -> Vec<String> {
    tokenize(ident)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Word)
        .map(|t| t.text)
        .collect()
}

/// True when the phrase contains at least one numeric token
/// (`containsNumber(s)` in Algorithm 2).
pub fn contains_number(input: &str) -> bool {
    tokenize(input).iter().any(Token::is_number)
}

/// Extract all numeric tokens from the phrase, parsed as `f64`
/// (`extractNumber(s)` in Algorithm 2; the paper extracts one number, we
/// return all in order and callers use the first).
pub fn extract_numbers(input: &str) -> Vec<f64> {
    tokenize(input)
        .into_iter()
        .filter(|t| t.is_number())
        .filter_map(|t| t.text.parse::<f64>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_words_and_numbers() {
        let toks = tokenize("Find papers after 2000");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["find", "papers", "after", "2000"]);
        assert_eq!(toks[3].kind, TokenKind::Number);
    }

    #[test]
    fn tokenizes_decimal_numbers() {
        let toks = tokenize("rating above 4.5 stars");
        assert_eq!(toks[2].text, "4.5");
        assert_eq!(toks[2].kind, TokenKind::Number);
    }

    #[test]
    fn splits_snake_case_identifiers() {
        assert_eq!(
            split_identifier("domain_conference"),
            vec!["domain", "conference"]
        );
    }

    #[test]
    fn splits_camel_case_identifiers() {
        assert_eq!(split_identifier("reviewCount"), vec!["review", "count"]);
        assert_eq!(split_identifier("HTTPServer"), vec!["httpserver"]);
    }

    #[test]
    fn detects_numbers() {
        assert!(contains_number("after 2000"));
        assert!(contains_number("more than 5 papers"));
        assert!(!contains_number("restaurant businesses"));
    }

    #[test]
    fn extracts_numbers() {
        assert_eq!(
            extract_numbers("between 1995 and 2005"),
            vec![1995.0, 2005.0]
        );
        assert_eq!(extract_numbers("rating 4.5"), vec![4.5]);
        assert!(extract_numbers("no numbers here").is_empty());
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   .,;  ").is_empty());
    }

    #[test]
    fn punctuation_is_skipped() {
        let texts = tokenize_lower("O'Brien, J. (2019)");
        assert_eq!(texts, vec!["o", "brien", "j", "2019"]);
    }
}
