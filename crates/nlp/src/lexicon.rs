//! A curated synonym lexicon used to ground the synthetic embedding model.
//!
//! The paper's Pipeline baseline uses word2vec trained on the Google-News
//! corpus, which (a) is far too large to ship and (b) would make the
//! experiments non-deterministic across environments.  We substitute a
//! lexicon of synonym groups covering the vocabulary of the three benchmark
//! domains (academic search, business reviews, movies).  Two words in the
//! same group receive a high similarity; words in *related* groups receive a
//! medium similarity.  This reproduces the crucial property the paper builds
//! on: natural-language terms such as *papers* are ambiguous between several
//! schema elements (`publication`, `journal`, `article`), and embedding
//! similarity alone cannot disambiguate them.

use std::collections::HashMap;

/// A synonym lexicon: maps words to synonym-group identifiers and records
/// which groups are semantically related.
#[derive(Debug, Clone, Default)]
pub struct SynonymLexicon {
    /// word -> group ids it belongs to (a word may belong to several groups).
    word_groups: HashMap<String, Vec<usize>>,
    /// Pairs of related (but not synonymous) groups.
    related: Vec<(usize, usize)>,
    /// Number of groups allocated so far.
    n_groups: usize,
}

/// Similarity contributed by the lexicon for a pair of words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LexiconRelation {
    /// Same word after lower-casing.
    Identical,
    /// Members of the same synonym group.
    Synonym,
    /// Members of related groups (e.g. *paper* vs *journal*).
    Related,
    /// No lexicon information.
    Unknown,
}

impl LexiconRelation {
    /// The similarity mass assigned to the relation, in `[0, 1]`.
    pub fn similarity(self) -> f64 {
        match self {
            LexiconRelation::Identical => 1.0,
            LexiconRelation::Synonym => 0.86,
            LexiconRelation::Related => 0.62,
            LexiconRelation::Unknown => 0.0,
        }
    }
}

impl SynonymLexicon {
    /// Create an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in lexicon covering the vocabulary of the MAS, Yelp and
    /// IMDB benchmark domains.  The *related* pairs intentionally encode the
    /// ambiguities discussed in the paper (Examples 1 and 5).
    pub fn builtin() -> Self {
        let mut lex = Self::new();
        // -------- academic (MAS) --------
        let paper = lex.add_group(&[
            "paper",
            "papers",
            "publication",
            "publications",
            "article",
            "articles",
        ]);
        let journal = lex.add_group(&["journal", "journals", "venue", "periodical"]);
        let conference = lex.add_group(&["conference", "conferences", "meeting", "symposium"]);
        let author = lex.add_group(&[
            "author",
            "authors",
            "writer",
            "researcher",
            "researchers",
            "person",
            "people",
        ]);
        let organization = lex.add_group(&[
            "organization",
            "organizations",
            "institution",
            "university",
            "affiliation",
        ]);
        let keyword_g = lex.add_group(&["keyword", "keywords", "topic", "topics", "term"]);
        let domain_g = lex.add_group(&["domain", "domains", "area", "areas", "field", "fields"]);
        let citation = lex.add_group(&[
            "citation",
            "citations",
            "cite",
            "cites",
            "cited",
            "reference",
            "references",
        ]);
        let year_g = lex.add_group(&["year", "years", "date", "time"]);
        let title_g = lex.add_group(&["title", "titles", "name", "names", "called"]);
        let count_g = lex.add_group(&["count", "number", "total", "many"]);
        // papers are ambiguous between publication and journal (Example 1)
        lex.relate(paper, journal);
        lex.relate(paper, conference);
        lex.relate(journal, conference);
        lex.relate(keyword_g, domain_g);
        lex.relate(author, organization);
        lex.relate(citation, paper);
        lex.relate(year_g, count_g);
        lex.relate(title_g, paper);

        // -------- business reviews (Yelp) --------
        let business = lex.add_group(&[
            "business",
            "businesses",
            "place",
            "places",
            "establishment",
            "shop",
            "store",
        ]);
        let restaurant = lex.add_group(&[
            "restaurant",
            "restaurants",
            "diner",
            "eatery",
            "bar",
            "cafe",
        ]);
        let review_g = lex.add_group(&["review", "reviews", "comment", "comments", "feedback"]);
        let user_g = lex.add_group(&[
            "user",
            "users",
            "reviewer",
            "reviewers",
            "member",
            "customer",
            "customers",
        ]);
        let rating = lex.add_group(&["rating", "ratings", "stars", "star", "score"]);
        let city_g = lex.add_group(&["city", "cities", "town", "location"]);
        let state_g = lex.add_group(&["state", "states", "province"]);
        let category = lex.add_group(&["category", "categories", "type", "kind", "cuisine"]);
        let checkin = lex.add_group(&["checkin", "checkins", "visit", "visits"]);
        let tip_g = lex.add_group(&["tip", "tips", "suggestion", "advice"]);
        lex.relate(business, restaurant);
        lex.relate(title_g, restaurant);
        lex.relate(review_g, tip_g);
        lex.relate(review_g, rating);
        lex.relate(user_g, author);
        lex.relate(city_g, state_g);
        lex.relate(category, domain_g);
        lex.relate(business, checkin);

        // -------- movies (IMDB) --------
        let movie = lex.add_group(&["movie", "movies", "film", "films", "picture"]);
        let actor = lex.add_group(&["actor", "actors", "actress", "actresses", "star", "cast"]);
        let director = lex.add_group(&["director", "directors", "filmmaker"]);
        let producer = lex.add_group(&["producer", "producers"]);
        let writer_g = lex.add_group(&["writer", "writers", "screenwriter", "scriptwriter"]);
        let genre = lex.add_group(&["genre", "genres", "style"]);
        let company = lex.add_group(&["company", "companies", "studio", "studios"]);
        let series = lex.add_group(&["series", "show", "shows", "tv"]);
        let episode = lex.add_group(&["episode", "episodes"]);
        let budget = lex.add_group(&["budget", "gross", "revenue", "earnings"]);
        lex.relate(movie, series);
        lex.relate(series, episode);
        lex.relate(actor, director);
        lex.relate(actor, writer_g);
        lex.relate(director, producer);
        lex.relate(director, writer_g);
        lex.relate(genre, category);
        lex.relate(genre, keyword_g);
        lex.relate(company, organization);
        lex.relate(movie, paper);
        lex.relate(budget, rating);
        lex.relate(title_g, movie);
        lex.relate(title_g, business);
        lex
    }

    /// Add a synonym group and return its identifier.
    pub fn add_group(&mut self, words: &[&str]) -> usize {
        let id = self.n_groups;
        self.n_groups += 1;
        for w in words {
            self.word_groups
                .entry(w.to_lowercase())
                .or_default()
                .push(id);
        }
        id
    }

    /// Mark two groups as related.
    pub fn relate(&mut self, a: usize, b: usize) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if !self.related.contains(&(lo, hi)) {
            self.related.push((lo, hi));
        }
    }

    /// Number of synonym groups in the lexicon.
    pub fn group_count(&self) -> usize {
        self.n_groups
    }

    /// Number of distinct words covered by the lexicon.
    pub fn word_count(&self) -> usize {
        self.word_groups.len()
    }

    /// True when the lexicon has an entry for the word.
    pub fn contains(&self, word: &str) -> bool {
        self.word_groups.contains_key(&word.to_lowercase())
    }

    /// Classify the relation between two words.
    pub fn relation(&self, a: &str, b: &str) -> LexiconRelation {
        let a = a.to_lowercase();
        let b = b.to_lowercase();
        if a == b {
            return LexiconRelation::Identical;
        }
        let (Some(ga), Some(gb)) = (self.word_groups.get(&a), self.word_groups.get(&b)) else {
            return LexiconRelation::Unknown;
        };
        for x in ga {
            if gb.contains(x) {
                return LexiconRelation::Synonym;
            }
        }
        for &x in ga {
            for &y in gb {
                let key = if x <= y { (x, y) } else { (y, x) };
                if self.related.contains(&key) {
                    return LexiconRelation::Related;
                }
            }
        }
        LexiconRelation::Unknown
    }

    /// Lexicon-derived similarity between two words in `[0, 1]`.
    pub fn word_similarity(&self, a: &str, b: &str) -> f64 {
        self.relation(a, b).similarity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contains_domain_vocabulary() {
        let lex = SynonymLexicon::builtin();
        assert!(lex.contains("papers"));
        assert!(lex.contains("restaurant"));
        assert!(lex.contains("movie"));
        assert!(lex.word_count() > 100);
        assert!(lex.group_count() > 25);
    }

    #[test]
    fn synonyms_score_higher_than_related() {
        let lex = SynonymLexicon::builtin();
        let syn = lex.word_similarity("papers", "publication");
        let rel = lex.word_similarity("papers", "journal");
        let unk = lex.word_similarity("papers", "restaurant");
        assert!(syn > rel, "synonym {syn} should beat related {rel}");
        assert!(rel > unk, "related {rel} should beat unknown {unk}");
        assert_eq!(unk, 0.0);
    }

    #[test]
    fn paper_journal_ambiguity_is_encoded() {
        // The paper's Example 1: "papers" is close to both publication and
        // journal, with journal close enough to confuse a similarity-only
        // mapper.
        let lex = SynonymLexicon::builtin();
        assert!(lex.word_similarity("papers", "journal") >= 0.6);
        assert!(lex.word_similarity("papers", "publication") >= 0.85);
    }

    #[test]
    fn identical_words_have_similarity_one() {
        let lex = SynonymLexicon::builtin();
        assert_eq!(lex.word_similarity("domain", "Domain"), 1.0);
        // even for out-of-vocabulary words
        assert_eq!(lex.word_similarity("zzz", "zzz"), 1.0);
    }

    #[test]
    fn relation_is_symmetric() {
        let lex = SynonymLexicon::builtin();
        for (a, b) in [
            ("papers", "journal"),
            ("actor", "director"),
            ("city", "state"),
        ] {
            assert_eq!(lex.relation(a, b), lex.relation(b, a));
        }
    }

    #[test]
    fn custom_lexicon_groups() {
        let mut lex = SynonymLexicon::new();
        let g1 = lex.add_group(&["cat", "feline"]);
        let g2 = lex.add_group(&["dog", "canine"]);
        lex.relate(g1, g2);
        assert_eq!(lex.relation("cat", "feline"), LexiconRelation::Synonym);
        assert_eq!(lex.relation("cat", "dog"), LexiconRelation::Related);
        assert_eq!(lex.relation("cat", "fish"), LexiconRelation::Unknown);
    }
}
