//! The Porter stemming algorithm (Porter, 1980).
//!
//! Algorithm 2 of the paper stems every whitespace-separated token of a
//! keyword before running a boolean full-text search (`restaurant businesses`
//! becomes `+restaur* +busi*`).  This module implements the classic
//! five-step Porter stemmer over ASCII lower-case words; non-ASCII input is
//! passed through with only lower-casing applied.

/// Stem an English word with the Porter algorithm.
///
/// ```
/// use nlp::stem::porter_stem;
/// assert_eq!(porter_stem("businesses"), "busi");
/// assert_eq!(porter_stem("restaurant"), "restaur");
/// assert_eq!(porter_stem("papers"), "paper");
/// ```
pub fn porter_stem(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() <= 2 || !w.is_ascii() {
        return w;
    }
    let mut s = Stemmer { b: w.into_bytes() };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b).expect("stemmer operates on ASCII only")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The "measure" m of the stem ending at index `end` (inclusive):
    /// the number of VC sequences in `[C](VC){m}[V]`.
    fn measure(&self, end: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // skip initial consonants
        while i <= end {
            if !self.is_consonant(i) {
                break;
            }
            i += 1;
        }
        if i > end {
            return 0;
        }
        loop {
            // skip vowels
            while i <= end {
                if self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            if i > end {
                return m;
            }
            m += 1;
            // skip consonants
            while i <= end {
                if !self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            if i > end {
                return m;
            }
        }
    }

    fn has_vowel(&self, end: usize) -> bool {
        (0..=end).any(|i| !self.is_consonant(i))
    }

    fn double_consonant(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.is_consonant(i)
    }

    /// cvc(i) is true when the letters at i-2, i-1, i are
    /// consonant-vowel-consonant and the final consonant is not w, x or y.
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &str) -> bool {
        let s = suffix.as_bytes();
        self.b.len() >= s.len() && &self.b[self.b.len() - s.len()..] == s
    }

    /// The index of the last character of the stem if `suffix` were removed.
    fn stem_end(&self, suffix: &str) -> Option<usize> {
        if self.ends_with(suffix) && self.b.len() > suffix.len() {
            Some(self.b.len() - suffix.len() - 1)
        } else {
            None
        }
    }

    fn replace_suffix(&mut self, suffix: &str, replacement: &str) {
        let keep = self.b.len() - suffix.len();
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// Replace `suffix` by `replacement` if the measure of the stem is > `min_m`.
    fn replace_if_m(&mut self, suffix: &str, replacement: &str, min_m: usize) -> bool {
        if let Some(end) = self.stem_end(suffix) {
            if self.measure(end) > min_m {
                self.replace_suffix(suffix, replacement);
            }
            true
        } else {
            false
        }
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.replace_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // no change
        } else if self.ends_with("s") && self.b.len() > 1 {
            self.replace_suffix("s", "");
        }
    }

    fn step1b(&mut self) {
        if let Some(end) = self.stem_end("eed") {
            if self.measure(end) > 0 {
                self.replace_suffix("eed", "ee");
            }
            return;
        }
        let removed = if let Some(end) = self.stem_end("ed") {
            if self.has_vowel(end) {
                self.replace_suffix("ed", "");
                true
            } else {
                false
            }
        } else if let Some(end) = self.stem_end("ing") {
            if self.has_vowel(end) {
                self.replace_suffix("ing", "");
                true
            } else {
                false
            }
        } else {
            false
        };
        if removed {
            if self.ends_with("at") || self.ends_with("bl") || self.ends_with("iz") {
                self.b.push(b'e');
            } else if !self.b.is_empty() && self.double_consonant(self.b.len() - 1) {
                let last = self.b[self.b.len() - 1];
                if !matches!(last, b'l' | b's' | b'z') {
                    self.b.pop();
                }
            } else if self.measure(self.b.len() - 1) == 1 && self.cvc(self.b.len() - 1) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if let Some(end) = self.stem_end("y") {
            if self.has_vowel(end) {
                let n = self.b.len();
                self.b[n - 1] = b'i';
            }
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.ends_with(suffix) {
                self.replace_if_m(suffix, replacement, 0);
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in RULES {
            if self.ends_with(suffix) {
                self.replace_if_m(suffix, replacement, 0);
                return;
            }
        }
    }

    fn step4(&mut self) {
        const RULES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
            "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        // special case: (s|t)ion
        if let Some(end) = self.stem_end("ion") {
            if (self.b[end] == b's' || self.b[end] == b't') && self.measure(end) > 1 {
                self.replace_suffix("ion", "");
                return;
            }
        }
        for suffix in RULES {
            if self.ends_with(suffix) {
                if let Some(end) = self.stem_end(suffix) {
                    if self.measure(end) > 1 {
                        self.replace_suffix(suffix, "");
                    }
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if let Some(end) = self.stem_end("e") {
            let m = self.measure(end);
            if m > 1 || (m == 1 && !self.cvc(end)) {
                self.replace_suffix("e", "");
            }
        }
    }

    fn step5b(&mut self) {
        let n = self.b.len();
        if n > 1 && self.b[n - 1] == b'l' && self.double_consonant(n - 1) && self.measure(n - 1) > 1
        {
            self.b.pop();
        }
    }
}

/// Stem every token of a phrase, returning the stemmed tokens in order.
pub fn stem_tokens(tokens: &[String]) -> Vec<String> {
    tokens.iter().map(|t| porter_stem(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_vectors() {
        // Reference outputs from the original Porter (1980) test vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "input: {input}");
        }
    }

    #[test]
    fn domain_vocabulary() {
        assert_eq!(porter_stem("restaurant"), "restaur");
        assert_eq!(porter_stem("businesses"), "busi");
        assert_eq!(porter_stem("papers"), "paper");
        assert_eq!(porter_stem("publications"), "public");
        assert_eq!(porter_stem("movies"), "movi");
        assert_eq!(porter_stem("reviews"), "review");
    }

    #[test]
    fn short_words_are_unchanged() {
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("by"), "by");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "restaurant",
            "paper",
            "journal",
            "review",
            "actor",
            "domain",
        ] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but should be stable for
            // our schema vocabulary, which keyword matching relies on.
            assert_eq!(once, twice, "word: {w}");
        }
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(porter_stem("café"), "café");
    }

    #[test]
    fn stem_tokens_maps_each_token() {
        let toks = vec!["restaurant".to_string(), "businesses".to_string()];
        assert_eq!(stem_tokens(&toks), vec!["restaur", "busi"]);
    }
}
