//! Property-based tests for the NLP substrate.

use nlp::{porter_stem, tokenize, SimilarityModel, TextSimilarity, WordModel};
use proptest::prelude::*;

proptest! {
    /// Stemming never panics and never produces a longer word.
    #[test]
    fn stem_never_grows(word in "[a-zA-Z]{1,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(!stem.is_empty());
    }

    /// Tokenization never panics and all word tokens are lower-case.
    #[test]
    fn tokens_are_lowercase(input in ".{0,80}") {
        for tok in tokenize(&input) {
            if tok.kind == nlp::TokenKind::Word {
                prop_assert_eq!(tok.text.clone(), tok.text.to_lowercase());
            }
        }
    }

    /// Word similarity is symmetric and bounded.
    #[test]
    fn word_similarity_symmetric(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        let m = WordModel::new();
        let ab = m.word_similarity(&a, &b);
        let ba = m.word_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// A word is always maximally similar to itself.
    #[test]
    fn self_similarity_is_one(a in "[a-z]{1,12}") {
        let m = WordModel::new();
        prop_assert_eq!(m.word_similarity(&a, &a), 1.0);
    }

    /// Phrase similarity through the SimilarityModel trait stays in [0, 1].
    #[test]
    fn phrase_similarity_bounded(a in "[a-z ]{0,30}", b in "[a-z_ ]{0,30}") {
        let sim = TextSimilarity::new();
        let s = sim.similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    /// Numeric extraction finds every integer literal embedded in a phrase.
    #[test]
    fn extract_numbers_finds_integers(n in 0u32..100_000) {
        let phrase = format!("after {n}");
        let nums = nlp::extract_numbers(&phrase);
        prop_assert_eq!(nums, vec![n as f64]);
    }
}
