//! Acceptance: on a stress scenario whose cartesian product exceeds 10⁶
//! configurations, the best-first search returns the provably exact top-k
//! — byte-identical to the exhaustive reference — while scoring at least
//! 5× fewer tuples, and a product no enumerator could touch degrades into
//! an explicit budget-exhausted best-effort instead of silent truncation.

use bench::stress;
use templar_core::Templar;

#[test]
fn best_first_matches_exhaustive_on_a_million_tuple_product() {
    let scenario = stress::exact_scenario();
    let templar =
        Templar::new(scenario.db.clone(), &scenario.log, scenario.config.clone()).unwrap();
    let (fast, fast_stats) = templar.map_keywords_with_stats(&scenario.keywords, &scenario.config);
    let (exact, exact_stats) =
        templar.map_keywords_exhaustive(&scenario.keywords, &scenario.config);

    // The scenario is as advertised: a > 10⁶ tuple product (and bounded —
    // tie retention did not silently inflate the pruned lists).
    assert!(
        exact_stats.tuples_scored > 1_000_000,
        "product too small: {}",
        exact_stats.tuples_scored
    );
    assert!(
        exact_stats.tuples_scored < 4_000_000,
        "pruned candidate lists unexpectedly deep: {}",
        exact_stats.tuples_scored
    );

    // Exactness: the search completed inside its budget, so its ranking is
    // byte-identical to scoring all million-plus configurations.
    assert!(!fast_stats.budget_exhausted);
    assert_eq!(fast, exact);
    assert!(!fast.is_empty());
    for (a, b) in fast.iter().zip(&exact) {
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.sigma_score.to_bits(), b.sigma_score.to_bits());
        assert_eq!(a.qfg_score.to_bits(), b.qfg_score.to_bits());
    }

    // Efficiency: ≥ 5× fewer tuples scored than enumeration, and the
    // search accounted for every tuple it did not score.
    assert!(
        fast_stats.tuples_scored.saturating_mul(5) <= exact_stats.tuples_scored,
        "search scored {} of {} tuples — less than a 5x win",
        fast_stats.tuples_scored,
        exact_stats.tuples_scored
    );
    assert_eq!(
        fast_stats.tuples_scored + fast_stats.tuples_pruned,
        exact_stats.tuples_scored,
        "scored + pruned must cover the whole product"
    );
    assert!(fast_stats.bound_cutoffs > 0);
}

#[test]
fn deep_scenario_is_searched_exactly_within_the_default_budget() {
    let scenario = stress::deep_scenario();
    let templar =
        Templar::new(scenario.db.clone(), &scenario.log, scenario.config.clone()).unwrap();
    let (ranked, stats) = templar.map_keywords_with_stats(&scenario.keywords, &scenario.config);
    // 5¹⁵ ≈ 3·10¹⁰ tuples — beyond any enumerator — yet the bound cuts the
    // space down to a few hundred scored tuples, well inside the default
    // budget, so the ranking is still provably exact.
    assert!(!stats.budget_exhausted);
    assert!(
        stats.tuples_scored + stats.tuples_pruned > 10_000_000_000,
        "search must account for the full 5^15-scale product: scored {} pruned {}",
        stats.tuples_scored,
        stats.tuples_pruned
    );
    assert!(stats.tuples_scored < scenario.config.search_budget as u64);
    assert_eq!(ranked.len(), scenario.config.max_configurations);
    for pair in ranked.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
}

#[test]
fn starved_budget_is_flagged_not_silently_truncated() {
    let scenario = stress::deep_scenario();
    let starved = scenario
        .config
        .clone()
        .with_search_budget(50)
        .with_scoring_threads(1);
    let templar = Templar::new(scenario.db.clone(), &scenario.log, starved.clone()).unwrap();
    let (ranked, stats) = templar.map_keywords_with_stats(&scenario.keywords, &starved);
    assert!(
        stats.budget_exhausted,
        "a 50-evaluation budget must run out"
    );
    assert!(stats.tuples_scored <= 50);
    // Still a usable, sorted best-effort ranking — and the exhaustion is
    // explicit, unlike the old silent 5000-tuple insertion-order cut.
    assert!(!ranked.is_empty());
    for pair in ranked.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
}

#[test]
fn single_threaded_and_parallel_searches_agree_on_the_stress_scenario() {
    let scenario = stress::exact_scenario();
    let serial_config = scenario.config.clone().with_scoring_threads(1);
    let parallel_config = scenario.config.clone().with_scoring_threads(8);
    let templar = Templar::new(scenario.db.clone(), &scenario.log, serial_config.clone()).unwrap();
    let (serial, serial_stats) =
        templar.map_keywords_with_stats(&scenario.keywords, &serial_config);
    let (parallel, _) = templar.map_keywords_with_stats(&scenario.keywords, &parallel_config);
    assert!(!serial_stats.budget_exhausted);
    assert_eq!(serial, parallel, "fan-out must not change the ranking");
}
