pub fn placeholder() {}
