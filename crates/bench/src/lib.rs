//! Shared benchmark scenarios.
//!
//! The heavy lifting lives in `benches/`; this library holds scenario
//! builders that both the criterion benches and the acceptance tests need —
//! most importantly the configuration-search stress scenario, whose
//! cartesian product is large enough (> 10⁶ configurations) that the
//! best-first search's pruning is measurable *and* still small enough that
//! the exhaustive reference can validate exactness in a test.

pub mod stress;
