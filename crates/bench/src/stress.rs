//! Configuration-search stress scenarios.
//!
//! A synthetic wide-schema movie database with many plausibly-similar
//! attributes, a query log whose co-occurrence structure makes `Score_QFG`
//! informative, and long multi-keyword questions — exactly the workload the
//! pre-search enumerator handled worst (it materialized the cartesian
//! product and silently truncated it at 5000 tuples in insertion order).

use relational::{DataType, Database, Schema};
use std::sync::Arc;
use templar_core::{Keyword, KeywordMetadata, QueryLog, TemplarConfig};

/// One ready-to-run stress case: a database, its query log and a keyword
/// question, plus the Templar configuration sized for the scenario.
pub struct StressScenario {
    pub db: Arc<Database>,
    pub log: QueryLog,
    pub keywords: Vec<(Keyword, KeywordMetadata)>,
    pub config: TemplarConfig,
}

/// Attribute vocabulary: `(relation, attributes)`.  Names are everyday
/// words so the character-n-gram similarity model spreads candidate σ's
/// instead of collapsing them into ties.
const RELATIONS: [(&str, &[&str]); 3] = [
    (
        "films",
        &[
            "title", "year", "rating", "budget", "revenue", "genre", "runtime", "language",
        ],
    ),
    (
        "people",
        &["name", "age", "city", "country", "salary", "height"],
    ),
    ("venues", &["venue", "capacity", "address", "phone"]),
];

/// Keyword phrases, each loosely aimed at one attribute but plausibly
/// similar to several (the ambiguity that makes ranking non-trivial).
const KEYWORD_PHRASES: [&str; 15] = [
    "movie title",
    "release year",
    "score rating",
    "money budget",
    "box office revenue",
    "kind of genre",
    "film runtime",
    "spoken language",
    "person name",
    "person age",
    "home city",
    "nation country",
    "yearly salary",
    "body height",
    "event venue",
];

fn build_db() -> Arc<Database> {
    let mut builder = Schema::builder("stress");
    for (relation, attrs) in RELATIONS {
        let columns: Vec<(&str, DataType)> = attrs
            .iter()
            .map(|a| {
                let numeric = matches!(
                    *a,
                    "year"
                        | "rating"
                        | "budget"
                        | "revenue"
                        | "runtime"
                        | "age"
                        | "salary"
                        | "height"
                        | "capacity"
                );
                (
                    *a,
                    if numeric {
                        DataType::Integer
                    } else {
                        DataType::Text
                    },
                )
            })
            .collect();
        builder = builder.relation(relation, &columns, Some(attrs[0]));
    }
    Arc::new(Database::new(builder.build()))
}

/// A log with deliberately skewed co-occurrence: attributes of the same
/// relation co-occur in clusters of different strengths, so Dice evidence
/// separates configurations that σ alone would rank closely.
fn build_log() -> QueryLog {
    let mut sql: Vec<String> = Vec::new();
    let clusters: [(&str, &str, &[&str], usize); 6] = [
        ("films", "f", &["title", "year"], 30),
        ("films", "f", &["title", "rating", "genre"], 18),
        ("films", "f", &["budget", "revenue"], 12),
        ("people", "p", &["name", "age"], 20),
        ("people", "p", &["name", "city", "country"], 9),
        ("venues", "v", &["venue", "capacity"], 7),
    ];
    for (relation, alias, attrs, repeats) in clusters {
        let projection = attrs
            .iter()
            .map(|a| format!("{alias}.{a}"))
            .collect::<Vec<_>>()
            .join(", ");
        for _ in 0..repeats {
            sql.push(format!("SELECT {projection} FROM {relation} {alias}"));
        }
    }
    // A sprinkle of single-attribute queries keeps every fragment alive.
    for (relation, attrs) in RELATIONS {
        let alias = &relation[..1];
        for attr in attrs {
            sql.push(format!("SELECT {alias}.{attr} FROM {relation} {alias}"));
        }
    }
    let (log, skipped) = QueryLog::from_sql(sql.iter().map(String::as_str));
    assert_eq!(skipped, 0, "stress log must be fully parsable");
    log
}

fn keywords(count: usize) -> Vec<(Keyword, KeywordMetadata)> {
    KEYWORD_PHRASES
        .iter()
        .take(count)
        .map(|phrase| (Keyword::new(*phrase), KeywordMetadata::select()))
        .collect()
}

/// The **exact** stress case: 10 SELECT keywords at κ = 4 give a cartesian
/// product of 4¹⁰ = 1 048 576 configurations — over the 10⁶ acceptance
/// floor, yet small enough for the exhaustive reference to verify the
/// search byte-for-byte.  The budget is effectively unlimited so the
/// search's exactness guarantee applies.
pub fn exact_scenario() -> StressScenario {
    StressScenario {
        db: build_db(),
        log: build_log(),
        keywords: keywords(10),
        config: TemplarConfig::default()
            .with_kappa(4)
            .with_search_budget(usize::MAX),
    }
}

/// The **deep** stress case: all 15 keywords at the paper's κ = 5 — a
/// 5¹⁵ ≈ 3·10¹⁰ tuple product no enumerator could touch.  Runs under the
/// default search budget, exercising the budgeted best-effort path a
/// pathological serving request would take.
pub fn deep_scenario() -> StressScenario {
    StressScenario {
        db: build_db(),
        log: build_log(),
        keywords: keywords(15),
        config: TemplarConfig::default().with_kappa(5),
    }
}
