//! Benchmark: end-to-end NLQ -> SQL translation latency of Pipeline and
//! Pipeline+ on representative benchmark cases from each dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use nlidb::{NlidbSystem, PipelineSystem};
use templar_core::TemplarConfig;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    for dataset in [Dataset::mas(), Dataset::yelp(), Dataset::imdb()] {
        let log = dataset.full_log();
        let baseline = PipelineSystem::baseline(dataset.db.clone()).unwrap();
        let augmented =
            PipelineSystem::augmented(dataset.db.clone(), &log, TemplarConfig::paper_defaults())
                .unwrap();
        let case = &dataset.cases[0];
        group.bench_function(format!("{}/pipeline", dataset.name), |b| {
            b.iter(|| baseline.translate(&case.nlq).map(|r| r.len()).unwrap_or(0))
        });
        group.bench_function(format!("{}/pipeline_plus", dataset.name), |b| {
            b.iter(|| augmented.translate(&case.nlq).map(|r| r.len()).unwrap_or(0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
