//! Benchmark: the cost of per-request tracing on the translation path.
//!
//! The disabled context is the default everywhere in `templar_core` and must
//! stay within noise of the pre-tracing build (<1% on keyword mapping); the
//! enabled variant measures what the serving layer actually pays to trace
//! every request — a handful of monotonic-clock reads per stage.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use nlidb::translate_traced;
use sqlparse::BinOp;
use templar_core::{Keyword, KeywordMetadata, Templar, TemplarConfig, TraceCtx, TraceSpans};

fn bench_tracing(c: &mut Criterion) {
    let dataset = Dataset::mas();
    let log = dataset.full_log();
    let keywords = vec![
        (Keyword::new("papers"), KeywordMetadata::select()),
        (Keyword::new("Databases"), KeywordMetadata::filter()),
        (
            Keyword::new("after 2000"),
            KeywordMetadata::filter_with_op(BinOp::Gt),
        ),
    ];
    let templar = Templar::new(dataset.db.clone(), &log, TemplarConfig::paper_defaults()).unwrap();

    c.bench_function("tracing_overhead/translate_disabled", |b| {
        b.iter(|| {
            let (results, _) =
                translate_traced(&templar, &keywords, templar.config(), TraceCtx::disabled());
            results.map(|r| r.len()).unwrap_or(0)
        })
    });
    c.bench_function("tracing_overhead/translate_enabled", |b| {
        b.iter(|| {
            let spans = TraceSpans::new();
            let (results, _) = translate_traced(
                &templar,
                &keywords,
                templar.config(),
                TraceCtx::enabled(&spans),
            );
            results.map(|r| r.len()).unwrap_or(0)
        })
    });
}

criterion_group!(benches, bench_tracing);
criterion_main!(benches);
