//! Benchmark: the best-first configuration search under stress — long
//! multi-keyword questions whose cartesian products (10⁶ to 3·10¹⁰ tuples)
//! the pre-search enumerator either could not finish or silently truncated.
//!
//! `search_stress/exact_1m` runs the provably exact search over a > 10⁶
//! tuple product; `search_stress/deep_15kw` searches a 5¹⁵-tuple space
//! (exactly, in practice — see the exactness tests); and
//! `search_stress/exhaustive_1m` is the enumerate-everything reference on
//! the same million-tuple scenario, for the ratio the PR records.
//!
//! With `BENCH_JSON=1` an extra machine-readable line records how many
//! tuples the search scored versus the enumeration, so `BENCH_PR5.json`
//! captures the pruning win alongside the timings.

use bench::stress;
use criterion::{criterion_group, criterion_main, Criterion};
use templar_core::Templar;

fn bench_search_stress(c: &mut Criterion) {
    let exact = stress::exact_scenario();
    let exact_templar = Templar::new(exact.db.clone(), &exact.log, exact.config.clone()).unwrap();
    let deep = stress::deep_scenario();
    let deep_templar = Templar::new(deep.db.clone(), &deep.log, deep.config.clone()).unwrap();

    if std::env::var_os("BENCH_JSON").is_some() {
        let (_, fast) = exact_templar.map_keywords_with_stats(&exact.keywords, &exact.config);
        let (_, reference) = exact_templar.map_keywords_exhaustive(&exact.keywords, &exact.config);
        println!(
            "BENCHJSON {{\"id\":\"search_stress/exact_1m_tuples\",\
             \"tuples_scored\":{},\"tuples_enumerated\":{},\"budget_exhausted\":{}}}",
            fast.tuples_scored, reference.tuples_scored, fast.budget_exhausted
        );
    }

    c.bench_function("search_stress/exact_1m", |b| {
        b.iter(|| {
            exact_templar
                .map_keywords_with_stats(&exact.keywords, &exact.config)
                .0
                .len()
        })
    });
    c.bench_function("search_stress/deep_15kw", |b| {
        b.iter(|| {
            deep_templar
                .map_keywords_with_stats(&deep.keywords, &deep.config)
                .0
                .len()
        })
    });
    c.bench_function("search_stress/exhaustive_1m", |b| {
        b.iter(|| {
            exact_templar
                .map_keywords_exhaustive(&exact.keywords, &exact.config)
                .0
                .len()
        })
    });
}

criterion_group!(benches, bench_search_stress);
criterion_main!(benches);
