//! Benchmark: building the Query Fragment Graph from a benchmark-sized query
//! log at each obscurity level (Section IV), plus the columnar data plane's
//! hot operations: delta-log compaction and id-based Dice lookups.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use templar_core::{FragmentId, Obscurity, QueryFragmentGraph};

use datasets::Dataset;

fn bench_qfg(c: &mut Criterion) {
    let log = Dataset::mas().full_log();
    for level in Obscurity::ALL {
        c.bench_function(format!("qfg/build_mas_{}", level.name()), |b| {
            b.iter(|| QueryFragmentGraph::build(&log, level).fragment_count())
        });
    }
    let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
    c.bench_function("qfg/relation_dice", |b| {
        b.iter(|| qfg.relation_dice("publication", "journal"))
    });
    // Dice over pre-resolved ids on a compacted graph: the scoring hot path.
    let ids: Vec<FragmentId> = qfg.fragments().filter_map(|(f, _)| qfg.lookup(f)).collect();
    c.bench_function("qfg/dice_by_id_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    acc += qfg.dice_by_id(ids[i], ids[j]);
                }
            }
            black_box(acc)
        })
    });
    // Ingest-then-compact: what a snapshot publish pays after an epoch of
    // incremental ingestion.
    let mut uncompacted = QueryFragmentGraph::empty(Obscurity::NoConstOp);
    for q in log.queries() {
        uncompacted.ingest(q);
    }
    c.bench_function("qfg/compact_after_full_ingest", |b| {
        b.iter(|| {
            let mut g = uncompacted.clone();
            g.compact();
            g.csr_edge_len()
        })
    });
}

criterion_group!(benches, bench_qfg);
criterion_main!(benches);
