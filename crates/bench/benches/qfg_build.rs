//! Benchmark: building the Query Fragment Graph from a benchmark-sized query
//! log at each obscurity level (Section IV).

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use templar_core::{Obscurity, QueryFragmentGraph};

fn bench_qfg(c: &mut Criterion) {
    let log = Dataset::mas().full_log();
    for level in Obscurity::ALL {
        c.bench_function(format!("qfg/build_mas_{}", level.name()), |b| {
            b.iter(|| QueryFragmentGraph::build(&log, level).fragment_count())
        });
    }
    let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
    c.bench_function("qfg/relation_dice", |b| {
        b.iter(|| qfg.relation_dice("publication", "journal"))
    });
}

criterion_group!(benches, bench_qfg);
criterion_main!(benches);
