//! Benchmark: the serving path, in-process and over real sockets.
//!
//! Part one keeps the historical in-process measurements: concurrent
//! translation throughput of `TemplarService` with and without ingestion
//! pressure (the `with_ingest` variant floods the queue while a worker
//! swaps snapshots, asserting reads were never blocked).
//!
//! Part two is the closed-loop **socket load harness** against a live
//! `TemplarServer`: mixed translate/ingest/feedback traffic from
//! concurrent TCP clients over each codec, client-measured latency
//! percentiles, a fixed-offered-load overload phase that records the shed
//! rate, and a wire-bound codec phase (large `MetricsReport` bodies) that
//! isolates JSON-vs-binary framing cost.  Results are printed and, with
//! `BENCH_JSON=1`, emitted as `BENCHJSON` lines for
//! `tools/bench_snapshot.sh` (`p50_us`/`p99_us`/`shed_rate`/bytes per
//! request).  `--test` runs the whole harness in smoke mode.

use criterion::{criterion_group, Criterion};
use datasets::Dataset;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use templar_api::{ApiError, TranslateRequest};
use templar_core::TemplarConfig;
use templar_server::{ClientError, ServerConfig, TcpClient, TemplarServer};
use templar_service::{ServiceConfig, TemplarService, TenantRegistry};

fn bench_service(c: &mut Criterion) {
    let dataset = Dataset::mas();
    let log = dataset.full_log();
    let nlq = dataset.cases[0].nlq.clone();
    // Recycled ingestion traffic: the benchmark's own gold SQL.
    let traffic: Vec<String> = dataset
        .cases
        .iter()
        .map(|case| case.gold_sql.to_string())
        .collect();

    let mut group = c.benchmark_group("service");
    group.sample_size(20);

    // Baseline: translations with a quiet ingestion queue.
    {
        let service = TemplarService::spawn(
            dataset.db.clone(),
            &log,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap();
        group.bench_function("translate/quiet", |b| {
            b.iter(|| service.translate(&nlq).map(|r| r.len()).unwrap_or(0))
        });
    }

    // Under pressure: a producer floods the queue and the worker swaps a
    // fresh snapshot every 8 applied entries.
    {
        let service = Arc::new(
            TemplarService::spawn(
                dataset.db.clone(),
                &log,
                TemplarConfig::paper_defaults(),
                ServiceConfig::default()
                    .with_refresh_every(8)
                    .with_refresh_interval(Duration::from_millis(1))
                    .with_queue_capacity(4096),
            )
            .unwrap(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let submitted = Arc::new(AtomicU64::new(0));
        let producer = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let submitted = Arc::clone(&submitted);
            let traffic = traffic.clone();
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    if service.submit_sql(&traffic[i % traffic.len()]).is_ok() {
                        submitted.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                    if i.is_multiple_of(64) {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            })
        };

        group.bench_function("translate/with_ingest", |b| {
            b.iter(|| service.translate(&nlq).map(|r| r.len()).unwrap_or(0))
        });

        stop.store(true, Ordering::Relaxed);
        producer.join().unwrap();
        let metrics = service.metrics();
        assert!(
            metrics.snapshot_swaps >= 1,
            "ingestion must have published snapshots during the benchmark"
        );
        assert!(
            metrics.translations_served > 0,
            "translations must have proceeded during ingestion"
        );
        println!(
            "service/with_ingest: {} translations served concurrently with {} applied \
             ingests across {} snapshot swaps (p50 {} µs, p99 {} µs, ingest lag {})",
            metrics.translations_served,
            metrics.ingest_applied,
            metrics.snapshot_swaps,
            metrics.translate_p50_us,
            metrics.translate_p99_us,
            metrics.ingest_lag,
        );
    }

    // Raw ingestion throughput: how fast entries are accepted and absorbed.
    {
        let service = Arc::new(
            TemplarService::spawn(
                dataset.db.clone(),
                &log,
                TemplarConfig::paper_defaults(),
                ServiceConfig::default().with_queue_capacity(100_000),
            )
            .unwrap(),
        );
        let mut i = 0usize;
        group.bench_function("ingest/submit", |b| {
            b.iter(|| {
                let _ = service.submit_sql(&traffic[i % traffic.len()]);
                i += 1;
            })
        });
        service.flush();
    }

    group.finish();
}

// ---------------------------------------------------------------------------
// Socket load harness
// ---------------------------------------------------------------------------

/// The Nlq of one dataset case as a wire request.
fn wire_request(dataset: &Dataset, case: usize) -> TranslateRequest {
    let nlq = &dataset.cases[case % dataset.cases.len()].nlq;
    TranslateRequest::new("mas", nlq.text.clone(), nlq.keywords.clone())
}

struct LoadOutcome {
    latencies_us: Vec<u64>,
    sheds: u64,
    requests: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn emit_load_json(id: &str, outcome: &LoadOutcome, bytes_per_request: u64) {
    let mut sorted = outcome.latencies_us.clone();
    sorted.sort_unstable();
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().sum::<u64>() / sorted.len() as u64
    };
    let shed_rate = if outcome.requests == 0 {
        0.0
    } else {
        outcome.sheds as f64 / outcome.requests as f64
    };
    println!(
        "{id:<50} p50 {p50} µs, p99 {p99} µs, shed rate {shed_rate:.3}, \
         {bytes_per_request} wire bytes/request"
    );
    if std::env::var_os("BENCH_JSON").is_some() {
        println!(
            "BENCHJSON {{\"id\":\"{id}\",\"requests\":{},\"p50_us\":{p50},\"p99_us\":{p99},\
             \"mean_us\":{mean},\"shed_rate\":{shed_rate:.4},\"bytes_per_request\":{bytes_per_request}}}",
            outcome.requests
        );
    }
}

/// Closed-loop clients: each thread keeps exactly one request in flight,
/// so offered load is `threads` concurrent requests.
fn drive_closed_loop(
    addr: std::net::SocketAddr,
    dataset: &Arc<Dataset>,
    binary: bool,
    threads: usize,
    requests_per_thread: usize,
    translate_only: bool,
) -> LoadOutcome {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let dataset = Arc::clone(dataset);
            std::thread::spawn(move || {
                let mut client = if binary {
                    TcpClient::connect_binary(addr).unwrap()
                } else {
                    TcpClient::connect_json(addr).unwrap()
                };
                let mut latencies = Vec::with_capacity(requests_per_thread);
                let mut sheds = 0u64;
                for i in 0..requests_per_thread {
                    let started = Instant::now();
                    // Mixed traffic: 70% translate, 20% ingest, 10% feedback.
                    let result = if translate_only || i % 10 < 7 {
                        client
                            .translate(wire_request(&dataset, t * 31 + i))
                            .map(|_| ())
                    } else if i % 10 < 9 {
                        let sql = dataset.cases[i % dataset.cases.len()].gold_sql.to_string();
                        client.submit_sql("mas", &sql)
                    } else {
                        let sql = dataset.cases[i % dataset.cases.len()].gold_sql.to_string();
                        client.feedback("mas", &sql)
                    };
                    match result {
                        Ok(()) => latencies.push(started.elapsed().as_micros() as u64),
                        Err(ClientError::Api(ApiError::Backpressure)) => sheds += 1,
                        Err(other) => panic!("load harness hit {other:?}"),
                    }
                }
                (latencies, sheds)
            })
        })
        .collect();
    let mut outcome = LoadOutcome {
        latencies_us: Vec::new(),
        sheds: 0,
        requests: (threads * requests_per_thread) as u64,
    };
    for handle in handles {
        let (latencies, sheds) = handle.join().unwrap();
        outcome.latencies_us.extend(latencies);
        outcome.sheds += sheds;
    }
    outcome
}

fn start_plane(dataset: &Dataset, tenant_quota: usize) -> (Arc<TenantRegistry>, TemplarServer) {
    let registry = Arc::new(TenantRegistry::new());
    let service = TemplarService::spawn(
        dataset.db.clone(),
        &dataset.full_log(),
        TemplarConfig::paper_defaults(),
        ServiceConfig::default()
            .with_queue_capacity(100_000)
            .with_max_inflight(tenant_quota),
    )
    .unwrap();
    registry.register("mas", service);
    let server = TemplarServer::start(
        Arc::clone(&registry),
        ServerConfig::default().with_workers(4),
    )
    .unwrap();
    (registry, server)
}

fn socket_load_harness(smoke: bool) {
    let dataset = Arc::new(Dataset::mas());
    let threads = 4usize;
    let per_thread = if smoke { 4 } else { 128 };
    let codec_roundtrips = if smoke { 4 } else { 512 };

    println!("\nsocket load harness (closed loop, {threads} clients):");

    // Capacity phase: quota far above offered load — zero sheds expected,
    // pure serving latency per codec.
    {
        let (_registry, server) = start_plane(&dataset, 256);
        for (label, binary) in [("serving_load/json", false), ("serving_load/binary", true)] {
            let before = server.stats();
            let outcome = drive_closed_loop(
                server.local_addr(),
                &dataset,
                binary,
                threads,
                per_thread,
                false,
            );
            let after = server.stats();
            let wire_bytes = (after.bytes_read - before.bytes_read)
                + (after.bytes_written - before.bytes_written);
            emit_load_json(label, &outcome, wire_bytes / outcome.requests.max(1));
            assert_eq!(outcome.sheds, 0, "capacity phase must not shed");
        }
    }

    // Overload phase: fixed offered load (4 concurrent translates) against
    // a tenant quota of 1 — the shed rate is the admission ladder working.
    {
        let (_registry, server) = start_plane(&dataset, 1);
        for (label, binary) in [
            ("serving_overload/json", false),
            ("serving_overload/binary", true),
        ] {
            let before = server.stats();
            let outcome = drive_closed_loop(
                server.local_addr(),
                &dataset,
                binary,
                threads,
                per_thread,
                true,
            );
            let after = server.stats();
            let wire_bytes = (after.bytes_read - before.bytes_read)
                + (after.bytes_written - before.bytes_written);
            emit_load_json(label, &outcome, wire_bytes / outcome.requests.max(1));
            if !smoke {
                assert!(outcome.sheds > 0, "offered load 4x a quota of 1 must shed");
            }
            assert!(
                outcome.latencies_us.len() as u64 + outcome.sheds == outcome.requests,
                "every request must be answered or typed-shed"
            );
        }
    }

    // Codec phase: single client, wire-bound bodies (a full MetricsReport
    // with both latency histograms) — isolates framing cost, where the
    // binary codec's win must be measurable.
    {
        let (_registry, server) = start_plane(&dataset, 256);
        let addr = server.local_addr();
        let mut results = Vec::new();
        for (label, binary) in [
            ("serving_codec/json", false),
            ("serving_codec/binary", true),
        ] {
            let mut client = if binary {
                TcpClient::connect_binary(addr).unwrap()
            } else {
                TcpClient::connect_json(addr).unwrap()
            };
            let before = server.stats();
            let mut latencies = Vec::with_capacity(codec_roundtrips);
            for _ in 0..codec_roundtrips {
                let started = Instant::now();
                client.metrics("mas").unwrap();
                latencies.push(started.elapsed().as_micros() as u64);
            }
            let after = server.stats();
            let wire_bytes = (after.bytes_read - before.bytes_read)
                + (after.bytes_written - before.bytes_written);
            let outcome = LoadOutcome {
                latencies_us: latencies,
                sheds: 0,
                requests: codec_roundtrips as u64,
            };
            let per_request = wire_bytes / codec_roundtrips as u64;
            emit_load_json(label, &outcome, per_request);
            results.push(per_request);
        }
        assert!(
            results[1] < results[0],
            "binary framing must be denser than JSON ({} vs {} bytes/request)",
            results[1],
            results[0]
        );
    }
}

// ---------------------------------------------------------------------------
// Translation-cache phases (Zipfian repeat traffic)
// ---------------------------------------------------------------------------

/// Deterministic Zipf(s=1) sampler over `n` ranks, driven by a fixed-seed
/// xorshift64* — benchmark traffic must be reproducible across runs.
struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / rank as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf {
            cdf,
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> usize {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let bits = self.state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        let u = bits as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn emit_cache_json(id: &str, latencies: &[u64], hit_rate: f64) {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let mean = sorted.iter().sum::<u64>() / sorted.len().max(1) as u64;
    println!("{id:<50} p50 {p50} µs, p99 {p99} µs, hit rate {hit_rate:.3}");
    if std::env::var_os("BENCH_JSON").is_some() {
        println!(
            "BENCHJSON {{\"id\":\"{id}\",\"draws\":{},\"p50_us\":{p50},\"p99_us\":{p99},\
             \"mean_us\":{mean},\"hit_rate\":{hit_rate:.4}}}",
            latencies.len()
        );
    }
}

/// Hot-repeat vs cold-miss serving under Zipfian question traffic.  The
/// cold phase forces a full computation per draw (`bypass_cache`); the hot
/// phase replays the same draw sequence through the epoch-keyed cache, so
/// the first touch of each distinct question misses and every repeat hits.
/// Every cached answer is asserted byte-identical to a forced recompute at
/// the same epoch before the numbers are reported.
fn translation_cache_phase(smoke: bool) {
    let dataset = Dataset::mas();
    let service = TemplarService::spawn(
        dataset.db.clone(),
        &dataset.full_log(),
        TemplarConfig::paper_defaults(),
        ServiceConfig::default(),
    )
    .unwrap();

    let pool_size = if smoke { 4 } else { dataset.cases.len() };
    let pool: Vec<TranslateRequest> = (0..pool_size).map(|i| wire_request(&dataset, i)).collect();
    let draws = if smoke { 8 } else { 2048 };
    let mut zipf = Zipf::new(pool.len());
    let sequence: Vec<usize> = (0..draws).map(|_| zipf.next()).collect();

    println!(
        "\ntranslation cache (Zipfian over {} distinct questions, {draws} draws):",
        pool.len()
    );

    let mut cold = Vec::with_capacity(draws);
    for &i in &sequence {
        let request = pool[i].clone().with_bypass_cache();
        let started = Instant::now();
        service.translate_request(&request).unwrap();
        cold.push(started.elapsed().as_micros() as u64);
    }
    emit_cache_json("translation_cache/cold_miss", &cold, 0.0);

    let mut hot = Vec::with_capacity(draws);
    for &i in &sequence {
        let started = Instant::now();
        service.translate_request(&pool[i]).unwrap();
        hot.push(started.elapsed().as_micros() as u64);
    }
    let metrics = service.metrics();
    let looked_up = metrics.translation_cache_hits + metrics.translation_cache_misses;
    let hit_rate = metrics.translation_cache_hits as f64 / looked_up.max(1) as f64;
    for request in &pool {
        let cached = service.translate_request(request).unwrap();
        let forced = service
            .translate_request(&request.clone().with_bypass_cache())
            .unwrap();
        assert_eq!(
            serde_json::to_string(&cached).unwrap(),
            serde_json::to_string(&forced).unwrap(),
            "a cache hit must be byte-identical to a recompute at the same epoch"
        );
    }
    emit_cache_json("translation_cache/hot_repeat", &hot, hit_rate);
    service.shutdown();
}

criterion_group!(benches, bench_service);

fn main() {
    criterion::configure_from_args();
    let smoke = std::env::args().any(|a| a == "--test");
    benches();
    socket_load_harness(smoke);
    translation_cache_phase(smoke);
}
