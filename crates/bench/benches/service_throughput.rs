//! Benchmark: concurrent translation throughput of `TemplarService`, with
//! and without concurrent ingestion pressure.
//!
//! The `with_ingest` variant runs while a background producer floods the
//! ingestion queue and the worker publishes a fresh snapshot every few
//! applied entries — the worst case for a design where ingestion could
//! block reads.  The run asserts at the end that snapshots were actually
//! being rebuilt and swapped while translations proceeded, demonstrating
//! that reads are not blocked by an in-flight rebuild.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use templar_core::TemplarConfig;
use templar_service::{ServiceConfig, TemplarService};

fn bench_service(c: &mut Criterion) {
    let dataset = Dataset::mas();
    let log = dataset.full_log();
    let nlq = dataset.cases[0].nlq.clone();
    // Recycled ingestion traffic: the benchmark's own gold SQL.
    let traffic: Vec<String> = dataset
        .cases
        .iter()
        .map(|case| case.gold_sql.to_string())
        .collect();

    let mut group = c.benchmark_group("service");
    group.sample_size(20);

    // Baseline: translations with a quiet ingestion queue.
    {
        let service = TemplarService::spawn(
            dataset.db.clone(),
            &log,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap();
        group.bench_function("translate/quiet", |b| {
            b.iter(|| service.translate(&nlq).map(|r| r.len()).unwrap_or(0))
        });
    }

    // Under pressure: a producer floods the queue and the worker swaps a
    // fresh snapshot every 8 applied entries.
    {
        let service = Arc::new(
            TemplarService::spawn(
                dataset.db.clone(),
                &log,
                TemplarConfig::paper_defaults(),
                ServiceConfig::default()
                    .with_refresh_every(8)
                    .with_refresh_interval(Duration::from_millis(1))
                    .with_queue_capacity(4096),
            )
            .unwrap(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let submitted = Arc::new(AtomicU64::new(0));
        let producer = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let submitted = Arc::clone(&submitted);
            let traffic = traffic.clone();
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    if service.submit_sql(&traffic[i % traffic.len()]).is_ok() {
                        submitted.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                    if i.is_multiple_of(64) {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            })
        };

        group.bench_function("translate/with_ingest", |b| {
            b.iter(|| service.translate(&nlq).map(|r| r.len()).unwrap_or(0))
        });

        stop.store(true, Ordering::Relaxed);
        producer.join().unwrap();
        let metrics = service.metrics();
        assert!(
            metrics.snapshot_swaps >= 1,
            "ingestion must have published snapshots during the benchmark"
        );
        assert!(
            metrics.translations_served > 0,
            "translations must have proceeded during ingestion"
        );
        println!(
            "service/with_ingest: {} translations served concurrently with {} applied \
             ingests across {} snapshot swaps (p50 {} µs, p99 {} µs, ingest lag {})",
            metrics.translations_served,
            metrics.ingest_applied,
            metrics.snapshot_swaps,
            metrics.translate_p50_us,
            metrics.translate_p99_us,
            metrics.ingest_lag,
        );
    }

    // Raw ingestion throughput: how fast entries are accepted and absorbed.
    {
        let service = Arc::new(
            TemplarService::spawn(
                dataset.db.clone(),
                &log,
                TemplarConfig::paper_defaults(),
                ServiceConfig::default().with_queue_capacity(100_000),
            )
            .unwrap(),
        );
        let mut i = 0usize;
        group.bench_function("ingest/submit", |b| {
            b.iter(|| {
                let _ = service.submit_sql(&traffic[i % traffic.len()]);
                i += 1;
            })
        });
        service.flush();
    }

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
