//! Data-plane timings at 1× / 100× / 1000× MAS scale: deterministic
//! scaled-log build, post-churn publish (tiered compaction's headline
//! number — it must stay flat as total history grows), sectioned v3
//! snapshot write/read, and bounded-memory WAL recovery.
//!
//! One timed pass per phase (these are multi-second macro phases, not
//! nanosecond kernels); `--test` runs a smoke pass at reduced factors.
//! With `BENCH_JSON=1` every phase emits a `BENCHJSON` line whose
//! `mean_ns` is the phase's wall-clock, so `tools/bench_snapshot.sh`
//! records and diffs them like any criterion entry.

use datasets::{scale_log, Dataset};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use templar_core::{Obscurity, QueryFragmentGraph, QueryLog, TemplarConfig};
use templar_service::{snapshot, wal, ServiceConfig, TemplarService, WalConfig, WAL_DIR};

const RECOVERY_BATCH_BYTES: usize = 256 * 1024;

/// Print one phase's wall-clock (and, with `BENCH_JSON=1`, its machine
/// line).  `extra_json` is zero or more extra `"key":value` fields.
fn report(id: &str, elapsed_ns: u128, extra_json: &str) {
    println!("{id:<50} {:>12.1} ms", elapsed_ns as f64 / 1e6);
    if std::env::var_os("BENCH_JSON").is_some() {
        let extra = if extra_json.is_empty() {
            String::new()
        } else {
            format!(",{extra_json}")
        };
        println!("BENCHJSON {{\"id\":\"{id}\",\"mean_ns\":{elapsed_ns}{extra}}}");
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("templar-bench-scale-{}-{name}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Build + publish + snapshot + recover at one scale factor.
fn run_factor(base: &QueryLog, factor: usize) {
    let scaled = scale_log(base, factor, 0x0BEA_C0DE + factor as u64);

    // Phase 1: incremental build of the tiered graph from an empty state,
    // ending in the publish-time compaction.
    let started = Instant::now();
    let mut graph = QueryFragmentGraph::empty(Obscurity::NoConstOp);
    for query in scaled.queries() {
        graph.ingest(query);
    }
    graph.compact();
    report(
        &format!("scale_data_plane/build_{factor}x"),
        started.elapsed().as_nanos(),
        &format!(
            "\"entries\":{},\"folds\":{}",
            scaled.len(),
            graph.run_folds()
        ),
    );

    // Phase 2: publish after bounded churn.  This is the number tiering
    // exists for: one base-log's worth of fresh entries lands on a graph
    // carrying `factor`× history, and the publish must cost O(churn) —
    // flat across factors — not O(history).
    for query in base.queries() {
        graph.ingest(query);
    }
    let started = Instant::now();
    graph.compact();
    report(
        &format!("scale_data_plane/publish_after_churn_{factor}x"),
        started.elapsed().as_nanos(),
        "",
    );

    // Phase 3: sectioned v3 snapshot write and streaming read.
    let dir = temp_dir(&format!("snap-{factor}x"));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.snapshot");
    let started = Instant::now();
    let bytes = snapshot::write_snapshot(&path, &scaled, &graph).unwrap();
    report(
        &format!("scale_data_plane/snapshot_write_{factor}x"),
        started.elapsed().as_nanos(),
        &format!("\"body_bytes\":{bytes}"),
    );
    let started = Instant::now();
    let snap = snapshot::read_snapshot(&path, Obscurity::NoConstOp).unwrap();
    assert_eq!(snap.log.len(), scaled.len());
    report(
        &format!("scale_data_plane/snapshot_read_{factor}x"),
        started.elapsed().as_nanos(),
        "",
    );
    fs::remove_dir_all(&dir).ok();

    // Phase 4: crash recovery of the whole scaled log from the journal
    // alone, replayed in bounded batches.
    let dir = temp_dir(&format!("recover-{factor}x"));
    let wal_dir = dir.join(WAL_DIR);
    fs::create_dir_all(&wal_dir).unwrap();
    {
        let mut writer = wal::WalWriter::create(&wal_dir, 1, WalConfig::default()).unwrap();
        for query in scaled.queries() {
            writer.append(&query.to_string());
        }
        writer.sync().unwrap();
    }
    let mas = Dataset::mas();
    let started = Instant::now();
    let service = TemplarService::recover(
        Arc::clone(&mas.db),
        &dir,
        TemplarConfig::paper_defaults(),
        ServiceConfig::default().with_recovery_batch_bytes(RECOVERY_BATCH_BYTES),
    )
    .unwrap();
    let elapsed = started.elapsed().as_nanos();
    let metrics = service.metrics();
    assert_eq!(metrics.wal_replayed, scaled.len() as u64);
    assert!(metrics.recovery_peak_batch_bytes <= RECOVERY_BATCH_BYTES as u64);
    report(
        &format!("scale_data_plane/recover_{factor}x"),
        elapsed,
        &format!("\"peak_batch_bytes\":{}", metrics.recovery_peak_batch_bytes),
    );
    drop(service);
    fs::remove_dir_all(&dir).ok();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let base = Dataset::mas().full_log();
    let factors: &[usize] = if smoke { &[1, 10] } else { &[1, 100, 1000] };
    for &factor in factors {
        run_factor(&base, factor);
    }
}
