//! Benchmark: the INFERJOINS call (Section VI) with default and log-driven
//! edge weights, including the self-join forking path of Example 7.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use relational::AttributeRef;
use schemagraph::SchemaGraph;
use templar_core::{infer_joins, BagItem, QueryFragmentGraph, TemplarConfig};

fn bench_joins(c: &mut Criterion) {
    let dataset = Dataset::mas();
    let graph = SchemaGraph::from_schema(dataset.db.schema());
    let qfg = QueryFragmentGraph::build(&dataset.full_log(), templar_core::Obscurity::NoConstOp);
    let bag = vec![
        BagItem::Attribute(AttributeRef::new("publication", "title")),
        BagItem::Attribute(AttributeRef::new("domain", "name")),
    ];
    let default_cfg = TemplarConfig::default().with_log_joins(false);
    let log_cfg = TemplarConfig::default();
    c.bench_function("join_inference/default_weights", |b| {
        b.iter(|| infer_joins(&graph, None, &default_cfg, &bag).is_ok())
    });
    c.bench_function("join_inference/log_weights", |b| {
        b.iter(|| infer_joins(&graph, Some(&qfg), &log_cfg, &bag).is_ok())
    });
    let self_join_bag = vec![
        BagItem::Attribute(AttributeRef::new("publication", "title")),
        BagItem::Attribute(AttributeRef::new("author", "name")),
        BagItem::Attribute(AttributeRef::new("author", "name")),
    ];
    c.bench_function("join_inference/self_join_fork", |b| {
        b.iter(|| infer_joins(&graph, Some(&qfg), &log_cfg, &self_join_bag).is_ok())
    });
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
