//! Benchmark: the Kou-Markowsky-Berman Steiner tree approximation on the MAS
//! and IMDB join graphs with 2-4 terminals.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use schemagraph::{steiner_tree, JoinGraph, SchemaGraph};

fn bench_steiner(c: &mut Criterion) {
    for dataset in [Dataset::mas(), Dataset::imdb()] {
        let graph = JoinGraph::from_schema_graph(&SchemaGraph::from_schema(dataset.db.schema()));
        let nodes: Vec<_> = (0..graph.nodes().len()).collect();
        for k in [2usize, 3, 4] {
            let terminals: Vec<usize> = nodes
                .iter()
                .step_by(nodes.len() / k)
                .take(k)
                .copied()
                .collect();
            c.bench_function(format!("steiner/{}_{}_terminals", dataset.name, k), |b| {
                b.iter(|| steiner_tree(&graph, &terminals).map(|p| p.edges.len()))
            });
        }
    }
}

criterion_group!(benches, bench_steiner);
criterion_main!(benches);
