//! Benchmark: the MAPKEYWORDS call (Algorithms 1-3) on representative MAS
//! keywords, with and without query-log information.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use sqlparse::BinOp;
use templar_core::{Keyword, KeywordMetadata, QueryLog, Templar, TemplarConfig};

fn bench_mapping(c: &mut Criterion) {
    let dataset = Dataset::mas();
    let log = dataset.full_log();
    let keywords = vec![
        (Keyword::new("papers"), KeywordMetadata::select()),
        (Keyword::new("Databases"), KeywordMetadata::filter()),
        (
            Keyword::new("after 2000"),
            KeywordMetadata::filter_with_op(BinOp::Gt),
        ),
    ];
    let with_log = Templar::new(dataset.db.clone(), &log, TemplarConfig::paper_defaults()).unwrap();
    let without_log = Templar::new(
        dataset.db.clone(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults().with_lambda(1.0),
    )
    .unwrap();
    c.bench_function("keyword_mapping/with_query_log", |b| {
        b.iter(|| with_log.map_keywords(&keywords).len())
    });
    c.bench_function("keyword_mapping/similarity_only", |b| {
        b.iter(|| without_log.map_keywords(&keywords).len())
    });
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
