//! Microbenchmark: SQL parsing and canonicalization throughput over the gold
//! SQL of the MAS benchmark (the hot path of query-log ingestion).

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::Dataset;
use sqlparse::{canonicalize, parse_query};

fn bench_parse(c: &mut Criterion) {
    let dataset = Dataset::mas();
    let sql: Vec<String> = dataset
        .cases
        .iter()
        .map(|c| c.gold_sql.to_string())
        .collect();
    c.bench_function("sqlparse/parse_mas_gold", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for s in &sql {
                if parse_query(s).is_ok() {
                    ok += 1;
                }
            }
            ok
        })
    });
    let parsed = dataset
        .cases
        .iter()
        .map(|c| c.gold_sql.clone())
        .collect::<Vec<_>>();
    c.bench_function("sqlparse/canonicalize_mas_gold", |b| {
        b.iter(|| parsed.iter().map(canonicalize).count())
    });
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
