//! **templar-service**: the concurrent query-serving subsystem.
//!
//! The paper treats the SQL query log as a static input: the Query Fragment
//! Graph is built once and every caller drives [`templar_core::Templar`]
//! synchronously.  In a deployed NLIDB the log *grows while the system
//! serves* — every answered natural-language query produces a new logged SQL
//! query that should sharpen future keyword mappings and join inferences.
//! This crate closes that loop:
//!
//! * [`server::TemplarService`] — lock-free concurrent reads over an
//!   `Arc`-swapped immutable snapshot, with a single background worker that
//!   ingests newly-logged queries and publishes refreshed snapshots
//!   epoch-style,
//! * [`ingest::IngestQueue`] — the bounded, fail-fast queue between
//!   translation threads and the worker,
//! * [`snapshot`] — versioned on-disk persistence of the log + QFG so a
//!   restart does not replay the whole log,
//! * [`wal`] — the write-ahead ingest journal: accepted entries are
//!   journaled (CRC-framed, fsync-batched segments) *before* they are
//!   applied, and [`server::TemplarService::recover`] restores a crashed
//!   service from latest-snapshot + journal-tail, torn final record
//!   truncated,
//! * [`metrics::ServiceMetrics`] — translations served, end-to-end *and*
//!   per-stage latency histograms, ingest lag, QFG size and join-cache
//!   statistics as plain data, plus a Prometheus text-format exposition
//!   ([`metrics::prometheus_text`]),
//! * `slowlog` — bounded capture of the slowest translations served, each
//!   with its per-stage latency breakdown
//!   ([`server::TemplarService::slow_queries`]),
//! * [`config::ServiceConfig`] / [`error::ServiceError`] — operational
//!   tunables and failure modes,
//! * [`registry::TenantRegistry`] — multi-tenant routing: one service per
//!   database, fronted by the versioned JSON line protocol of `templar-api`
//!   (typed requests, explained responses, the [`templar_api::ApiError`]
//!   taxonomy),
//! * [`client::RegistryClient`] — an in-process client that talks to the
//!   registry through the wire encoding.
//!
//! The paper-facing semantics are unchanged: a snapshot is an ordinary
//! [`templar_core::Templar`] and still exposes exactly the two interface
//! calls of Figure 2.  Host systems consume the service through
//! [`templar_core::SharedTemplar`] (see `PipelineSystem::serving` /
//! `NaLirSystem::serving` in the `nlidb` crate).

// Production code must fail with typed errors, never panic: a serving
// process that unwraps on a disk fault takes every tenant down with it.
// Unit tests (compiled with `cfg(test)`) may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod config;
pub mod error;
pub mod ingest;
pub mod metrics;
pub mod registry;
pub mod server;
pub(crate) mod slowlog;
pub mod snapshot;
pub mod storage;
pub(crate) mod transcache;
pub mod wal;

pub use client::{is_retryable, retry_with_deadline, RegistryClient};
pub use config::{ServiceConfig, WalConfig};
pub use error::{ServiceError, SnapshotError, WalError};
pub use ingest::IngestQueue;
pub use metrics::{prometheus_text, HealthState, MetricsSnapshot, ServiceMetrics};
pub use registry::TenantRegistry;
pub use server::{InflightPermit, TemplarService, LOCK_FILE, SNAPSHOT_FILE, WAL_DIR};
pub use snapshot::{
    read_snapshot, read_snapshot_with_watermark, write_snapshot, write_snapshot_with_watermark,
    Snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use storage::{FaultRule, FaultyStorage, FsStorage, Storage, StorageFile, StorageOp};
