//! Multi-tenant routing: one [`TemplarService`] per database, addressed by
//! tenant id.
//!
//! ```text
//!             JSON line                 ┌──────────────────────────────┐
//!  client ──► {"version":2, ...} ────► │ TenantRegistry               │
//!             handle_line()            │   "mas"  ─► TemplarService A │
//!                                      │   "imdb" ─► TemplarService B │
//!             {"version":2, ok,…} ◄─── │   "yelp" ─► TemplarService C │
//!  client ◄── response line            └──────────────────────────────┘
//! ```
//!
//! The registry owns the request/response boundary: it decodes envelopes,
//! rejects protocol-version mismatches, routes by tenant id, applies the
//! request's per-tenant service, and projects every failure onto the
//! [`ApiError`] taxonomy.  Registration and lookup are guarded by a plain
//! `RwLock` — registration is rare, lookups clone an `Arc`, and the actual
//! translation work runs entirely outside the lock.

use crate::metrics::{prometheus_text, MetricsSnapshot};
use crate::server::TemplarService;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use templar_api::{
    decode_request, encode_response, ApiError, HealthReport, MetricsReport, RequestBody,
    ResponseBody, ResponseEnvelope, SlowQueryReport, TranslateRequest, TranslateResponse,
};

/// Routes requests to one [`TemplarService`] per tenant (database).
#[derive(Default)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<String, Arc<TemplarService>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tenant's service under an id, returning the shared handle.
    /// Re-registering an id replaces the previous service (its in-flight
    /// snapshots stay alive until their readers drop).
    pub fn register(
        &self,
        tenant: impl Into<String>,
        service: TemplarService,
    ) -> Arc<TemplarService> {
        let service = Arc::new(service);
        self.tenants
            .write()
            .insert(tenant.into(), Arc::clone(&service));
        service
    }

    /// Resolve a tenant id.
    pub fn get(&self, tenant: &str) -> Result<Arc<TemplarService>, ApiError> {
        self.tenants
            .read()
            .get(tenant)
            .map(Arc::clone)
            .ok_or_else(|| ApiError::UnknownTenant {
                tenant: tenant.to_string(),
            })
    }

    /// The registered tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        self.tenants.read().keys().cloned().collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().is_empty()
    }

    /// Route one typed translation request.
    pub fn translate(&self, request: &TranslateRequest) -> Result<TranslateResponse, ApiError> {
        self.get(&request.tenant)?.translate_request(request)
    }

    /// Route one SQL ingestion.  A full tenant queue surfaces as
    /// [`ApiError::Backpressure`].
    pub fn submit_sql(&self, tenant: &str, sql: &str) -> Result<(), ApiError> {
        self.get(tenant)?.submit_sql(sql).map_err(ApiError::from)
    }

    /// Route one accepted-SQL feedback entry: same durable ingest path as
    /// [`TenantRegistry::submit_sql`], counted under `feedback_accepted`.
    pub fn feedback(&self, tenant: &str, sql: &str) -> Result<(), ApiError> {
        self.get(tenant)?
            .submit_feedback(sql)
            .map_err(ApiError::from)
    }

    /// Fetch one tenant's serving metrics in wire form.
    pub fn metrics(&self, tenant: &str) -> Result<MetricsReport, ApiError> {
        Ok(metrics_report(&self.get(tenant)?.metrics()))
    }

    /// Fetch one tenant's write-availability state in wire form.
    pub fn health(&self, tenant: &str) -> Result<HealthReport, ApiError> {
        Ok(health_report(&self.get(tenant)?.metrics()))
    }

    /// Fetch one tenant's captured slow queries, slowest first.
    pub fn slow_queries(&self, tenant: &str) -> Result<Vec<SlowQueryReport>, ApiError> {
        Ok(self.get(tenant)?.slow_queries())
    }

    /// A Prometheus text-format exposition: one tenant, or every registered
    /// tenant assembled into a single exposition (each metric family's
    /// `# HELP`/`# TYPE` header appears exactly once, with one sample per
    /// tenant under the `tenant` label).
    pub fn prometheus(&self, tenant: Option<&str>) -> Result<String, ApiError> {
        match tenant {
            Some(tenant) => Ok(self.get(tenant)?.metrics().to_prometheus_text(tenant)),
            None => {
                let services: Vec<(String, Arc<TemplarService>)> = self
                    .tenants
                    .read()
                    .iter()
                    .map(|(id, service)| (id.clone(), Arc::clone(service)))
                    .collect();
                let snapshots: Vec<(String, MetricsSnapshot)> = services
                    .iter()
                    .map(|(id, service)| (id.clone(), service.metrics()))
                    .collect();
                let refs: Vec<(&str, &MetricsSnapshot)> = snapshots
                    .iter()
                    .map(|(id, snap)| (id.as_str(), snap))
                    .collect();
                Ok(prometheus_text(&refs))
            }
        }
    }

    /// Reserve one slot of the tenant's in-flight quota
    /// ([`crate::ServiceConfig::max_inflight`]).  A full quota sheds with
    /// [`ApiError::Backpressure`] and counts an `admission_tenant_shed`.
    /// The permit releases its slot on drop; hold it across the operation
    /// it admits.
    pub fn admit(&self, tenant: &str) -> Result<crate::InflightPermit, ApiError> {
        self.get(tenant)?.try_admit().ok_or(ApiError::Backpressure)
    }

    /// Count one request turned away by a serving plane's *global*
    /// in-flight cap against the tenant it targeted, so global sheds are
    /// attributable per tenant in the Prometheus exposition.
    pub fn record_global_shed(&self, tenant: &str) {
        if let Ok(service) = self.get(tenant) {
            service.record_global_shed();
        }
    }

    /// Execute one decoded operation.  This is the single entry point every
    /// transport (the in-process [`handle_line`](Self::handle_line) path and
    /// a network serving plane alike) routes through, so codecs cannot
    /// drift in behaviour.
    pub fn dispatch(&self, body: &RequestBody) -> Result<ResponseBody, ApiError> {
        match body {
            RequestBody::Translate(request) => {
                self.translate(request).map(ResponseBody::Translated)
            }
            RequestBody::SubmitSql { tenant, sql } => self
                .submit_sql(tenant, sql)
                .map(|()| ResponseBody::SqlAccepted),
            RequestBody::Feedback { tenant, sql } => self
                .feedback(tenant, sql)
                .map(|()| ResponseBody::FeedbackAccepted),
            RequestBody::Metrics { tenant } => self
                .metrics(tenant)
                .map(|report| ResponseBody::Metrics(Box::new(report))),
            RequestBody::SlowQueries { tenant } => {
                self.slow_queries(tenant).map(ResponseBody::SlowQueries)
            }
            RequestBody::Prometheus { tenant } => self
                .prometheus(tenant.as_deref())
                .map(ResponseBody::Prometheus),
            RequestBody::Health { tenant } => self.health(tenant).map(ResponseBody::Health),
        }
    }

    /// Serve one JSON protocol line, producing exactly one response line.
    /// Never fails: every error becomes the `err` arm of a response
    /// envelope, echoing the request's correlation id when it could be
    /// recovered.
    ///
    /// Admission-controlled operations pass through the tenant's in-flight
    /// quota exactly as they do on the network plane, so an in-process
    /// client observes the same `Backpressure` semantics as a socket.
    pub fn handle_line(&self, line: &str) -> String {
        let envelope = match decode_request(line) {
            Ok(envelope) => envelope,
            Err((id, err)) => return encode_response(&ResponseEnvelope::failure(id, err)),
        };
        let id = envelope.id;
        let outcome = self.admit_and_dispatch(&envelope.body);
        let response = match outcome {
            Ok(body) => ResponseEnvelope::success(id, body),
            Err(err) => ResponseEnvelope::failure(id, err),
        };
        encode_response(&response)
    }

    /// [`dispatch`](Self::dispatch), behind the tenant's in-flight quota for
    /// operations that consume work capacity.
    pub fn admit_and_dispatch(&self, body: &RequestBody) -> Result<ResponseBody, ApiError> {
        let _permit = match body.tenant() {
            Some(tenant) if body.is_admission_controlled() => Some(self.admit(tenant)?),
            _ => None,
        };
        self.dispatch(body)
    }
}

/// Project a service-side metrics snapshot onto its wire form.
fn metrics_report(snapshot: &MetricsSnapshot) -> MetricsReport {
    MetricsReport {
        translations_served: snapshot.translations_served,
        empty_translations: snapshot.empty_translations,
        search_tuples_scored: snapshot.search_tuples_scored,
        search_tuples_pruned: snapshot.search_tuples_pruned,
        search_bound_cutoffs: snapshot.search_bound_cutoffs,
        search_budget_exhausted: snapshot.search_budget_exhausted,
        translate_p50_us: snapshot.translate_p50_us,
        translate_p99_us: snapshot.translate_p99_us,
        translate_mean_us: snapshot.translate_mean_us,
        translate_sum_us: snapshot.translate_sum_us,
        translate_buckets: snapshot.translate_buckets.clone(),
        stage_latencies: snapshot.stage_latencies.clone(),
        ingest_submitted: snapshot.ingest_submitted,
        ingest_rejected: snapshot.ingest_rejected,
        ingest_applied: snapshot.ingest_applied,
        ingest_parse_errors: snapshot.ingest_parse_errors,
        log_skipped_statements: snapshot.log_skipped_statements,
        ingest_lag: snapshot.ingest_lag,
        log_evictions: snapshot.log_evictions,
        snapshot_swaps: snapshot.snapshot_swaps,
        feedback_accepted: snapshot.feedback_accepted,
        wal_appended: snapshot.wal_appended,
        wal_fsyncs: snapshot.wal_fsyncs,
        wal_replayed: snapshot.wal_replayed,
        wal_segments_gc: snapshot.wal_segments_gc,
        wal_io_errors: snapshot.wal_io_errors,
        wal_last_errno: snapshot.wal_last_errno,
        health_state: snapshot.health_state,
        degraded_entries_total: snapshot.degraded_entries_total,
        journal_retries_total: snapshot.journal_retries_total,
        journal_heals_total: snapshot.journal_heals_total,
        wal_truncated_bytes: snapshot.wal_truncated_bytes,
        recovery_peak_batch_bytes: snapshot.recovery_peak_batch_bytes,
        snapshot_body_bytes: snapshot.snapshot_body_bytes,
        admission_tenant_shed: snapshot.admission_tenant_shed,
        admission_global_shed: snapshot.admission_global_shed,
        wal_applied_seq: snapshot.wal_applied_seq,
        join_cache_hits: snapshot.join_cache_hits,
        join_cache_misses: snapshot.join_cache_misses,
        join_cache_evictions: snapshot.join_cache_evictions,
        join_cache_entries: snapshot.join_cache_entries,
        qfg_fragments: snapshot.qfg_fragments,
        qfg_edges: snapshot.qfg_edges,
        qfg_queries: snapshot.qfg_queries,
        qfg_interned_fragments: snapshot.qfg_interned_fragments,
        qfg_csr_edges: snapshot.qfg_csr_edges,
        qfg_pending_deltas: snapshot.qfg_pending_deltas,
        qfg_compactions: snapshot.qfg_compactions,
        qfg_delta_runs: snapshot.qfg_delta_runs,
        qfg_run_merges: snapshot.qfg_run_merges,
        translation_cache_hits: snapshot.translation_cache_hits,
        translation_cache_misses: snapshot.translation_cache_misses,
        translation_cache_evictions: snapshot.translation_cache_evictions,
        translation_cache_invalidations: snapshot.translation_cache_invalidations,
        translation_cache_entries: snapshot.translation_cache_entries,
        word_memo_hits: snapshot.word_memo_hits,
        word_memo_misses: snapshot.word_memo_misses,
        phrase_memo_hits: snapshot.phrase_memo_hits,
        phrase_memo_misses: snapshot.phrase_memo_misses,
    }
}

/// Project a service-side metrics snapshot onto the `Health` wire payload.
fn health_report(snapshot: &MetricsSnapshot) -> HealthReport {
    HealthReport {
        state: if snapshot.health_state == 0 {
            "healthy".to_string()
        } else {
            "degraded".to_string()
        },
        health_state: snapshot.health_state,
        degraded_entries_total: snapshot.degraded_entries_total,
        journal_retries_total: snapshot.journal_retries_total,
        journal_heals_total: snapshot.journal_heals_total,
        wal_io_errors: snapshot.wal_io_errors,
        wal_last_errno: snapshot.wal_last_errno,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every snapshot field must survive the wire projection.  Both structs
    /// are destructured *without* `..`, so adding a field to either side
    /// breaks this test's compilation until the projection (and this
    /// checklist) are updated — a new counter can never silently read 0 on
    /// the wire.
    #[test]
    fn metrics_projection_carries_every_field() {
        let mut snapshot = MetricsSnapshot {
            translations_served: 1,
            empty_translations: 2,
            search_tuples_scored: 3,
            search_tuples_pruned: 4,
            search_bound_cutoffs: 5,
            search_budget_exhausted: 6,
            translate_p50_us: 7,
            translate_p99_us: 8,
            translate_mean_us: 9,
            translate_sum_us: 10,
            translate_buckets: vec![templar_api::HistogramBucket {
                le_us: u64::MAX,
                count: 1,
            }],
            stage_latencies: vec![],
            ingest_submitted: 11,
            ingest_rejected: 12,
            ingest_applied: 13,
            ingest_parse_errors: 14,
            log_skipped_statements: 15,
            ingest_lag: 16,
            log_evictions: 17,
            snapshot_swaps: 18,
            feedback_accepted: 19,
            wal_appended: 20,
            wal_fsyncs: 21,
            wal_replayed: 22,
            wal_segments_gc: 23,
            wal_io_errors: 24,
            wal_last_errno: 53,
            health_state: 54,
            degraded_entries_total: 55,
            journal_retries_total: 56,
            journal_heals_total: 57,
            wal_truncated_bytes: 25,
            recovery_peak_batch_bytes: 49,
            snapshot_body_bytes: 50,
            admission_tenant_shed: 38,
            admission_global_shed: 39,
            wal_applied_seq: 26,
            join_cache_hits: 27,
            join_cache_misses: 28,
            join_cache_evictions: 29,
            join_cache_entries: 30,
            qfg_fragments: 31,
            qfg_edges: 32,
            qfg_queries: 33,
            qfg_interned_fragments: 34,
            qfg_csr_edges: 35,
            qfg_pending_deltas: 36,
            qfg_compactions: 37,
            qfg_delta_runs: 51,
            qfg_run_merges: 52,
            translation_cache_hits: 40,
            translation_cache_misses: 41,
            translation_cache_evictions: 42,
            translation_cache_invalidations: 43,
            translation_cache_entries: 44,
            word_memo_hits: 45,
            word_memo_misses: 46,
            phrase_memo_hits: 47,
            phrase_memo_misses: 48,
        };
        snapshot.stage_latencies = vec![templar_api::StageLatencyReport {
            stage: "config_search".to_string(),
            count: 1,
            p50_us: 2,
            p99_us: 3,
            mean_us: 4,
            sum_us: 5,
            buckets: vec![],
        }];

        let MetricsReport {
            translations_served,
            empty_translations,
            search_tuples_scored,
            search_tuples_pruned,
            search_bound_cutoffs,
            search_budget_exhausted,
            translate_p50_us,
            translate_p99_us,
            translate_mean_us,
            translate_sum_us,
            translate_buckets,
            stage_latencies,
            ingest_submitted,
            ingest_rejected,
            ingest_applied,
            ingest_parse_errors,
            log_skipped_statements,
            ingest_lag,
            log_evictions,
            snapshot_swaps,
            feedback_accepted,
            wal_appended,
            wal_fsyncs,
            wal_replayed,
            wal_segments_gc,
            wal_io_errors,
            wal_last_errno,
            health_state,
            degraded_entries_total,
            journal_retries_total,
            journal_heals_total,
            wal_truncated_bytes,
            recovery_peak_batch_bytes,
            snapshot_body_bytes,
            admission_tenant_shed,
            admission_global_shed,
            wal_applied_seq,
            join_cache_hits,
            join_cache_misses,
            join_cache_evictions,
            join_cache_entries,
            qfg_fragments,
            qfg_edges,
            qfg_queries,
            qfg_interned_fragments,
            qfg_csr_edges,
            qfg_pending_deltas,
            qfg_compactions,
            qfg_delta_runs,
            qfg_run_merges,
            translation_cache_hits,
            translation_cache_misses,
            translation_cache_evictions,
            translation_cache_invalidations,
            translation_cache_entries,
            word_memo_hits,
            word_memo_misses,
            phrase_memo_hits,
            phrase_memo_misses,
        } = metrics_report(&snapshot);

        assert_eq!(translations_served, 1);
        assert_eq!(empty_translations, 2);
        assert_eq!(search_tuples_scored, 3);
        assert_eq!(search_tuples_pruned, 4);
        assert_eq!(search_bound_cutoffs, 5);
        assert_eq!(search_budget_exhausted, 6);
        assert_eq!(translate_p50_us, 7);
        assert_eq!(translate_p99_us, 8);
        assert_eq!(translate_mean_us, 9);
        assert_eq!(translate_sum_us, 10);
        assert_eq!(translate_buckets, snapshot.translate_buckets);
        assert_eq!(stage_latencies, snapshot.stage_latencies);
        assert_eq!(ingest_submitted, 11);
        assert_eq!(ingest_rejected, 12);
        assert_eq!(ingest_applied, 13);
        assert_eq!(ingest_parse_errors, 14);
        assert_eq!(log_skipped_statements, 15);
        assert_eq!(ingest_lag, 16);
        assert_eq!(log_evictions, 17);
        assert_eq!(snapshot_swaps, 18);
        assert_eq!(feedback_accepted, 19);
        assert_eq!(wal_appended, 20);
        assert_eq!(wal_fsyncs, 21);
        assert_eq!(wal_replayed, 22);
        assert_eq!(wal_segments_gc, 23);
        assert_eq!(wal_io_errors, 24);
        assert_eq!(wal_last_errno, 53);
        assert_eq!(health_state, 54);
        assert_eq!(degraded_entries_total, 55);
        assert_eq!(journal_retries_total, 56);
        assert_eq!(journal_heals_total, 57);
        assert_eq!(wal_truncated_bytes, 25);
        assert_eq!(recovery_peak_batch_bytes, 49);
        assert_eq!(snapshot_body_bytes, 50);
        assert_eq!(admission_tenant_shed, 38);
        assert_eq!(admission_global_shed, 39);
        assert_eq!(wal_applied_seq, 26);
        assert_eq!(join_cache_hits, 27);
        assert_eq!(join_cache_misses, 28);
        assert_eq!(join_cache_evictions, 29);
        assert_eq!(join_cache_entries, 30);
        assert_eq!(qfg_fragments, 31);
        assert_eq!(qfg_edges, 32);
        assert_eq!(qfg_queries, 33);
        assert_eq!(qfg_interned_fragments, 34);
        assert_eq!(qfg_csr_edges, 35);
        assert_eq!(qfg_pending_deltas, 36);
        assert_eq!(qfg_compactions, 37);
        assert_eq!(qfg_delta_runs, 51);
        assert_eq!(qfg_run_merges, 52);
        assert_eq!(translation_cache_hits, 40);
        assert_eq!(translation_cache_misses, 41);
        assert_eq!(translation_cache_evictions, 42);
        assert_eq!(translation_cache_invalidations, 43);
        assert_eq!(translation_cache_entries, 44);
        assert_eq!(word_memo_hits, 45);
        assert_eq!(word_memo_misses, 46);
        assert_eq!(phrase_memo_hits, 47);
        assert_eq!(phrase_memo_misses, 48);
    }
}
