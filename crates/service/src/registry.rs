//! Multi-tenant routing: one [`TemplarService`] per database, addressed by
//! tenant id.
//!
//! ```text
//!             JSON line                 ┌──────────────────────────────┐
//!  client ──► {"version":2, ...} ────► │ TenantRegistry               │
//!             handle_line()            │   "mas"  ─► TemplarService A │
//!                                      │   "imdb" ─► TemplarService B │
//!             {"version":2, ok,…} ◄─── │   "yelp" ─► TemplarService C │
//!  client ◄── response line            └──────────────────────────────┘
//! ```
//!
//! The registry owns the request/response boundary: it decodes envelopes,
//! rejects protocol-version mismatches, routes by tenant id, applies the
//! request's per-tenant service, and projects every failure onto the
//! [`ApiError`] taxonomy.  Registration and lookup are guarded by a plain
//! `RwLock` — registration is rare, lookups clone an `Arc`, and the actual
//! translation work runs entirely outside the lock.

use crate::metrics::MetricsSnapshot;
use crate::server::TemplarService;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use templar_api::{
    decode_request, encode_response, ApiError, MetricsReport, RequestBody, ResponseBody,
    ResponseEnvelope, TranslateRequest, TranslateResponse,
};

/// Routes requests to one [`TemplarService`] per tenant (database).
#[derive(Default)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<String, Arc<TemplarService>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tenant's service under an id, returning the shared handle.
    /// Re-registering an id replaces the previous service (its in-flight
    /// snapshots stay alive until their readers drop).
    pub fn register(
        &self,
        tenant: impl Into<String>,
        service: TemplarService,
    ) -> Arc<TemplarService> {
        let service = Arc::new(service);
        self.tenants
            .write()
            .insert(tenant.into(), Arc::clone(&service));
        service
    }

    /// Resolve a tenant id.
    pub fn get(&self, tenant: &str) -> Result<Arc<TemplarService>, ApiError> {
        self.tenants
            .read()
            .get(tenant)
            .map(Arc::clone)
            .ok_or_else(|| ApiError::UnknownTenant {
                tenant: tenant.to_string(),
            })
    }

    /// The registered tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        self.tenants.read().keys().cloned().collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().is_empty()
    }

    /// Route one typed translation request.
    pub fn translate(&self, request: &TranslateRequest) -> Result<TranslateResponse, ApiError> {
        self.get(&request.tenant)?.translate_request(request)
    }

    /// Route one SQL ingestion.  A full tenant queue surfaces as
    /// [`ApiError::Backpressure`].
    pub fn submit_sql(&self, tenant: &str, sql: &str) -> Result<(), ApiError> {
        self.get(tenant)?.submit_sql(sql).map_err(ApiError::from)
    }

    /// Route one accepted-SQL feedback entry: same durable ingest path as
    /// [`TenantRegistry::submit_sql`], counted under `feedback_accepted`.
    pub fn feedback(&self, tenant: &str, sql: &str) -> Result<(), ApiError> {
        self.get(tenant)?
            .submit_feedback(sql)
            .map_err(ApiError::from)
    }

    /// Fetch one tenant's serving metrics in wire form.
    pub fn metrics(&self, tenant: &str) -> Result<MetricsReport, ApiError> {
        Ok(metrics_report(&self.get(tenant)?.metrics()))
    }

    /// Serve one JSON protocol line, producing exactly one response line.
    /// Never fails: every error becomes the `err` arm of a response
    /// envelope, echoing the request's correlation id when it could be
    /// recovered.
    pub fn handle_line(&self, line: &str) -> String {
        let envelope = match decode_request(line) {
            Ok(envelope) => envelope,
            Err((id, err)) => return encode_response(&ResponseEnvelope::failure(id, err)),
        };
        let id = envelope.id;
        let outcome = match &envelope.body {
            RequestBody::Translate(request) => {
                self.translate(request).map(ResponseBody::Translated)
            }
            RequestBody::SubmitSql { tenant, sql } => self
                .submit_sql(tenant, sql)
                .map(|()| ResponseBody::SqlAccepted),
            RequestBody::Feedback { tenant, sql } => self
                .feedback(tenant, sql)
                .map(|()| ResponseBody::FeedbackAccepted),
            RequestBody::Metrics { tenant } => self
                .metrics(tenant)
                .map(|report| ResponseBody::Metrics(Box::new(report))),
        };
        let response = match outcome {
            Ok(body) => ResponseEnvelope::success(id, body),
            Err(err) => ResponseEnvelope::failure(id, err),
        };
        encode_response(&response)
    }
}

/// Project a service-side metrics snapshot onto its wire form.
fn metrics_report(snapshot: &MetricsSnapshot) -> MetricsReport {
    MetricsReport {
        translations_served: snapshot.translations_served,
        empty_translations: snapshot.empty_translations,
        search_tuples_scored: snapshot.search_tuples_scored,
        search_tuples_pruned: snapshot.search_tuples_pruned,
        search_bound_cutoffs: snapshot.search_bound_cutoffs,
        search_budget_exhausted: snapshot.search_budget_exhausted,
        translate_p50_us: snapshot.translate_p50_us,
        translate_p99_us: snapshot.translate_p99_us,
        translate_mean_us: snapshot.translate_mean_us,
        ingest_submitted: snapshot.ingest_submitted,
        ingest_rejected: snapshot.ingest_rejected,
        ingest_applied: snapshot.ingest_applied,
        ingest_parse_errors: snapshot.ingest_parse_errors,
        log_skipped_statements: snapshot.log_skipped_statements,
        ingest_lag: snapshot.ingest_lag,
        log_evictions: snapshot.log_evictions,
        snapshot_swaps: snapshot.snapshot_swaps,
        feedback_accepted: snapshot.feedback_accepted,
        wal_appended: snapshot.wal_appended,
        wal_fsyncs: snapshot.wal_fsyncs,
        wal_replayed: snapshot.wal_replayed,
        wal_segments_gc: snapshot.wal_segments_gc,
        wal_io_errors: snapshot.wal_io_errors,
        wal_truncated_bytes: snapshot.wal_truncated_bytes,
        wal_applied_seq: snapshot.wal_applied_seq,
        join_cache_hits: snapshot.join_cache_hits,
        join_cache_misses: snapshot.join_cache_misses,
        join_cache_evictions: snapshot.join_cache_evictions,
        join_cache_entries: snapshot.join_cache_entries,
        qfg_fragments: snapshot.qfg_fragments,
        qfg_edges: snapshot.qfg_edges,
        qfg_queries: snapshot.qfg_queries,
        qfg_interned_fragments: snapshot.qfg_interned_fragments,
        qfg_csr_edges: snapshot.qfg_csr_edges,
        qfg_pending_deltas: snapshot.qfg_pending_deltas,
        qfg_compactions: snapshot.qfg_compactions,
    }
}
