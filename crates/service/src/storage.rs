//! The storage boundary: every byte the service persists — WAL segments,
//! snapshot files, the ownership lock, directory entry tables — crosses a
//! [`Storage`] trait instead of calling `std::fs` directly.
//!
//! Production uses [`FsStorage`], a zero-cost veneer over the real
//! filesystem.  Tests use [`FaultyStorage`], a deterministic fault injector
//! that can fail the Nth write/fsync/rename with a chosen `errno`
//! (`ENOSPC` vs `EIO`), land a short write before failing, fail once or
//! forever, or *halt* — refuse every subsequent operation, modeling a
//! crash whose surviving bytes are exactly what reached the inner
//! filesystem before the trigger.  The chaos matrix in
//! `tests/chaos_storage.rs` and the write-side torn matrices in `wal.rs` /
//! `snapshot.rs` drive every durability path through it.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

/// Linux `ENOSPC` ("no space left on device") — the canonical disk-full
/// fault the chaos tests inject.
pub const ENOSPC: i32 = 28;
/// Linux `EIO` ("input/output error") — the canonical media fault.
pub const EIO: i32 = 5;

/// One open file handle for writing, behind the storage boundary.
///
/// `io::Write` is a supertrait so `BufWriter` composes over a boxed handle;
/// the extra methods cover the durability operations the WAL and snapshot
/// writers need.
pub trait StorageFile: Write + Send + fmt::Debug {
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Cut the file back to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Reposition the write cursor to an absolute offset.
    fn seek_start(&mut self, pos: u64) -> io::Result<()>;
}

/// One open file handle for reading, behind the storage boundary.
pub trait StorageRead: Read + Send + fmt::Debug {}

impl StorageFile for File {
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }
    fn seek_start(&mut self, pos: u64) -> io::Result<()> {
        self.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl StorageRead for File {}

/// Every filesystem operation the service performs, as a closed set — both
/// the dispatch surface of [`Storage`] and the fault-site vocabulary of
/// [`FaultyStorage`] (a [`FaultRule`] names the operation it fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum StorageOp {
    /// `create_dir_all`.
    CreateDir = 0,
    /// Create-or-truncate open for writing (new WAL segment, snapshot temp
    /// file).
    Create = 1,
    /// Open an existing file for writing without truncation (torn-tail
    /// repair).
    OpenWrite = 2,
    /// Open for reading.
    OpenRead = 3,
    /// Whole-file read.
    ReadFile = 4,
    /// Directory listing.
    ListDir = 5,
    /// A `write(2)` on an open handle.
    Write = 6,
    /// `fdatasync` on an open handle.
    SyncData = 7,
    /// `fsync` on an open handle.
    SyncAll = 8,
    /// `ftruncate` on an open handle.
    SetLen = 9,
    /// Atomic rename (snapshot publish).
    Rename = 10,
    /// File deletion (segment GC, temp-file sweep).
    RemoveFile = 11,
    /// Directory entry-table fsync.
    SyncDir = 12,
    /// Create-and-lock of the ownership lock file.
    Lock = 13,
    /// File size probe.
    Len = 14,
}

/// Number of distinct [`StorageOp`] values (per-op counter array size).
const OP_COUNT: usize = 15;

/// The set of filesystem operations the service's durability paths use.
///
/// Implementations must be shareable across threads: the ingestion worker,
/// checkpoints, and recovery all hold the same `Arc<dyn Storage>`.
pub trait Storage: Send + Sync + fmt::Debug {
    /// `create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Create (or truncate) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open an existing file for writing without truncating it.
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open `path` for reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageRead>>;
    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// The file names (not full paths) under directory `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync the directory at `path` so freshly created / renamed / removed
    /// entry names survive power loss.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Create `path` and take an exclusive advisory lock on it, returning
    /// the locked handle (dropping it releases the lock).  Fails with
    /// [`io::ErrorKind::WouldBlock`] when another live process holds it.
    fn lock_exclusive(&self, path: &Path) -> io::Result<File>;
    /// Size of the file at `path`, bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Storage`]: direct `std::fs` calls, no indirection
/// beyond the vtable.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsStorage;

impl FsStorage {
    /// A shared production storage handle.
    pub fn shared() -> Arc<dyn Storage> {
        Arc::new(FsStorage)
    }
}

impl Storage for FsStorage {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(file))
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().write(true).open(path)?;
        Ok(Box::new(file))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageRead>> {
        Ok(Box::new(File::open(path)?))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(path)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn lock_exclusive(&self, path: &Path) -> io::Result<File> {
        let lock = File::create(path)?;
        lock.try_lock()
            .map_err(|_| io::Error::from(io::ErrorKind::WouldBlock))?;
        Ok(lock)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// One deterministic fault: fail the matching [`StorageOp`] with `errno`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The operation to fail.
    pub op: StorageOp,
    /// Zero-based call index at which the fault fires: `after == n` fails
    /// the `(n+1)`-th matching call.
    pub after: u64,
    /// Raw OS error returned ([`ENOSPC`], [`EIO`], …).
    pub errno: i32,
    /// `true` keeps failing every later matching call (fail-forever);
    /// `false` fails exactly once.
    pub forever: bool,
    /// `true` halts the whole storage after the fault fires: every
    /// subsequent operation of any kind fails, modeling a crash — the
    /// surviving bytes are exactly what was persisted before the trigger.
    pub halt: bool,
    /// For [`StorageOp::Write`] only: persist this many bytes of the
    /// failing write before returning the error (a short / torn write).
    pub short_write: Option<usize>,
}

impl FaultRule {
    /// Fail the `(after+1)`-th `op` once with `errno`.
    pub fn once(op: StorageOp, after: u64, errno: i32) -> FaultRule {
        FaultRule {
            op,
            after,
            errno,
            forever: false,
            halt: false,
            short_write: None,
        }
    }

    /// Fail the `(after+1)`-th and every later `op` with `errno`.
    pub fn forever(op: StorageOp, after: u64, errno: i32) -> FaultRule {
        FaultRule {
            forever: true,
            ..FaultRule::once(op, after, errno)
        }
    }

    /// Crash at the `(after+1)`-th `op`: the call fails and the storage
    /// halts.
    pub fn crash(op: StorageOp, after: u64) -> FaultRule {
        FaultRule {
            halt: true,
            ..FaultRule::once(op, after, EIO)
        }
    }
}

#[derive(Debug, Default)]
struct FaultState {
    rules: Vec<FaultRule>,
    /// Per-op call counts (indexed by `StorageOp as usize`), fault sites
    /// enumerable by running a clean pass first.
    counts: [u64; OP_COUNT],
    /// Cumulative payload bytes accepted by `Write` calls.
    bytes_written: u64,
    /// Crash after this many cumulative written bytes: the triggering write
    /// persists a prefix up to the budget, then the storage halts.
    write_byte_budget: Option<u64>,
    /// Once halted, every operation fails (crash simulation).
    halted: bool,
    /// Faults fired so far.
    injected: u64,
}

/// Count one `op` call against the shared fault state and decide its fate.
fn check_op(state: &Mutex<FaultState>, op: StorageOp) -> io::Result<()> {
    let mut state = state.lock();
    if state.halted {
        return Err(halted_error());
    }
    let n = state.counts[op as usize];
    state.counts[op as usize] += 1;
    let fired = state.rules.iter().find_map(|rule| {
        let hit = rule.op == op
            && if rule.forever {
                n >= rule.after
            } else {
                n == rule.after
            };
        hit.then_some((rule.errno, rule.halt))
    });
    if let Some((errno, halt)) = fired {
        state.injected += 1;
        if halt {
            state.halted = true;
        }
        return Err(io::Error::from_raw_os_error(errno));
    }
    Ok(())
}

/// Decide a write of `len` bytes: `Ok(len)` passes it through whole,
/// `Err((prefix, error))` persists only `prefix` bytes then fails.
fn check_write(state: &Mutex<FaultState>, len: usize) -> Result<usize, (usize, io::Error)> {
    let mut state = state.lock();
    if state.halted {
        return Err((0, halted_error()));
    }
    let n = state.counts[StorageOp::Write as usize];
    state.counts[StorageOp::Write as usize] += 1;
    let fired = state.rules.iter().find_map(|rule| {
        let hit = rule.op == StorageOp::Write
            && if rule.forever {
                n >= rule.after
            } else {
                n == rule.after
            };
        hit.then_some((rule.errno, rule.halt, rule.short_write))
    });
    if let Some((errno, halt, short)) = fired {
        state.injected += 1;
        if halt {
            state.halted = true;
        }
        let prefix = short.unwrap_or(0).min(len);
        state.bytes_written += prefix as u64;
        return Err((prefix, io::Error::from_raw_os_error(errno)));
    }
    if let Some(budget) = state.write_byte_budget {
        if state.bytes_written + len as u64 > budget {
            let prefix = budget.saturating_sub(state.bytes_written) as usize;
            state.injected += 1;
            state.halted = true;
            state.bytes_written += prefix as u64;
            return Err((prefix, io::Error::from_raw_os_error(ENOSPC)));
        }
    }
    state.bytes_written += len as u64;
    Ok(len)
}

/// A deterministic fault-injecting [`Storage`] for tests: delegates to an
/// inner [`FsStorage`] until a [`FaultRule`] (or the byte-budget crash of
/// [`FaultyStorage::crash_after_write_bytes`]) fires.
///
/// Shareable and reconfigurable mid-run: tests keep an
/// `Arc<FaultyStorage>`, hand a clone to the service as `Arc<dyn Storage>`,
/// and later [`clear`](FaultyStorage::clear) the faults to model the disk
/// coming back.
#[derive(Debug, Default)]
pub struct FaultyStorage {
    inner: FsStorage,
    state: Arc<Mutex<FaultState>>,
}

impl FaultyStorage {
    /// A fault-free injector (counts operations; useful for enumerating
    /// fault sites before a chaos run).
    pub fn new() -> Arc<FaultyStorage> {
        Arc::new(FaultyStorage::default())
    }

    /// Install one fault rule.
    pub fn inject(&self, rule: FaultRule) {
        self.state.lock().rules.push(rule);
    }

    /// Crash once `budget` cumulative bytes have been written: the
    /// triggering write persists exactly up to the budget (a torn write),
    /// then every subsequent operation fails.
    pub fn crash_after_write_bytes(&self, budget: u64) {
        self.state.lock().write_byte_budget = Some(budget);
    }

    /// Remove every fault rule, the byte budget, and the halted state —
    /// the disk comes back.  Counters are preserved.
    pub fn clear(&self) {
        let mut state = self.state.lock();
        state.rules.clear();
        state.write_byte_budget = None;
        state.halted = false;
    }

    /// Reset the per-op call counters (between enumeration and replay of a
    /// recorded schedule).
    pub fn reset_counts(&self) {
        let mut state = self.state.lock();
        state.counts = [0; OP_COUNT];
        state.bytes_written = 0;
    }

    /// How many times `op` has been issued.
    pub fn op_count(&self, op: StorageOp) -> u64 {
        self.state.lock().counts[op as usize]
    }

    /// Cumulative payload bytes accepted by writes.
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    /// How many faults have fired.
    pub fn injected(&self) -> u64 {
        self.state.lock().injected
    }

    /// Whether a `halt` fault (or the byte-budget crash) has fired.
    pub fn halted(&self) -> bool {
        self.state.lock().halted
    }

    fn check(&self, op: StorageOp) -> io::Result<()> {
        check_op(&self.state, op)
    }
}

fn halted_error() -> io::Error {
    io::Error::other("storage halted by injected crash")
}

impl Storage for FaultyStorage {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check(StorageOp::CreateDir)?;
        self.inner.create_dir_all(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.check(StorageOp::Create)?;
        let file = self.inner.create(path)?;
        Ok(Box::new(FaultyFile {
            state: Arc::clone(&self.state),
            inner: file,
        }))
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.check(StorageOp::OpenWrite)?;
        let file = self.inner.open_write(path)?;
        Ok(Box::new(FaultyFile {
            state: Arc::clone(&self.state),
            inner: file,
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageRead>> {
        self.check(StorageOp::OpenRead)?;
        self.inner.open_read(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check(StorageOp::ReadFile)?;
        self.inner.read(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        self.check(StorageOp::ListDir)?;
        self.inner.list_dir(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(StorageOp::Rename)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check(StorageOp::RemoveFile)?;
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.check(StorageOp::SyncDir)?;
        self.inner.sync_dir(path)
    }

    fn lock_exclusive(&self, path: &Path) -> io::Result<File> {
        self.check(StorageOp::Lock)?;
        self.inner.lock_exclusive(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.check(StorageOp::Len)?;
        self.inner.file_len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// A write handle whose every `write` / `sync` / `set_len` consults the
/// owning [`FaultyStorage`]'s fault state first.
#[derive(Debug)]
struct FaultyFile {
    state: Arc<Mutex<FaultState>>,
    inner: Box<dyn StorageFile>,
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match check_write(&self.state, buf.len()) {
            Ok(len) => {
                self.inner.write_all(&buf[..len])?;
                Ok(len)
            }
            Err((prefix, e)) => {
                // A torn write: the prefix reaches the inner file, the
                // caller sees the failure.
                if prefix > 0 {
                    self.inner.write_all(&buf[..prefix])?;
                    let _ = self.inner.sync_data();
                }
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl StorageFile for FaultyFile {
    fn sync_data(&mut self) -> io::Result<()> {
        check_op(&self.state, StorageOp::SyncData)?;
        self.inner.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        check_op(&self.state, StorageOp::SyncAll)?;
        self.inner.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        check_op(&self.state, StorageOp::SetLen)?;
        self.inner.set_len(len)
    }

    fn seek_start(&mut self, pos: u64) -> io::Result<()> {
        self.inner.seek_start(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "templar-storage-test-{}-{name}",
            std::process::id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fs_storage_round_trips_bytes() {
        let dir = temp_dir("fs-roundtrip");
        let storage = FsStorage;
        let path = dir.join("file.bin");
        let mut file = storage.create(&path).unwrap();
        file.write_all(b"hello").unwrap();
        file.sync_all().unwrap();
        drop(file);
        assert_eq!(storage.read(&path).unwrap(), b"hello");
        assert_eq!(storage.file_len(&path).unwrap(), 5);
        assert!(storage.exists(&path));
        assert_eq!(storage.list_dir(&dir).unwrap(), vec!["file.bin"]);
        let to = dir.join("renamed.bin");
        storage.rename(&path, &to).unwrap();
        storage.sync_dir(&dir).unwrap();
        assert!(!storage.exists(&path));
        storage.remove_file(&to).unwrap();
        assert!(!storage.exists(&to));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_once_fires_exactly_once() {
        let dir = temp_dir("fail-once");
        let storage = FaultyStorage::new();
        storage.inject(FaultRule::once(StorageOp::SyncData, 1, EIO));
        let mut file = storage.create(&dir.join("f")).unwrap();
        file.write_all(b"a").unwrap();
        assert!(file.sync_data().is_ok(), "call 0 passes");
        let err = file.sync_data().expect_err("call 1 fails");
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert!(file.sync_data().is_ok(), "call 2 passes again");
        assert_eq!(storage.injected(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_forever_keeps_failing_until_cleared() {
        let dir = temp_dir("fail-forever");
        let storage = FaultyStorage::new();
        storage.inject(FaultRule::forever(StorageOp::SyncData, 0, ENOSPC));
        let mut file = storage.create(&dir.join("f")).unwrap();
        for _ in 0..3 {
            assert_eq!(
                file.sync_data().expect_err("forever").raw_os_error(),
                Some(ENOSPC)
            );
        }
        storage.clear();
        assert!(file.sync_data().is_ok(), "the disk came back");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_persists_the_prefix_then_fails() {
        let dir = temp_dir("short-write");
        let storage = FaultyStorage::new();
        storage.inject(FaultRule {
            short_write: Some(3),
            ..FaultRule::once(StorageOp::Write, 0, EIO)
        });
        let path = dir.join("f");
        let mut file = storage.create(&path).unwrap();
        assert!(file.write_all(b"abcdef").is_err());
        drop(file);
        assert_eq!(fs::read(&path).unwrap(), b"abc", "only the prefix landed");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_crash_halts_everything_after_the_torn_write() {
        let dir = temp_dir("byte-budget");
        let storage = FaultyStorage::new();
        storage.crash_after_write_bytes(4);
        let path = dir.join("f");
        let mut file = storage.create(&path).unwrap();
        file.write_all(b"ab").unwrap();
        assert!(
            file.write_all(b"cdef").is_err(),
            "budget exceeded mid-write"
        );
        assert!(storage.halted());
        assert!(file.sync_data().is_err(), "halted: nothing more succeeds");
        assert!(storage.read(&path).is_err());
        drop(file);
        assert_eq!(fs::read(&path).unwrap(), b"abcd", "exactly 4 bytes survive");
        storage.clear();
        assert!(storage.read(&path).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn op_counts_enumerate_fault_sites() {
        let dir = temp_dir("op-counts");
        let storage = FaultyStorage::new();
        let mut file = storage.create(&dir.join("f")).unwrap();
        file.write_all(b"x").unwrap();
        file.write_all(b"y").unwrap();
        file.sync_data().unwrap();
        drop(file);
        assert_eq!(storage.op_count(StorageOp::Create), 1);
        assert_eq!(storage.op_count(StorageOp::Write), 2);
        assert_eq!(storage.op_count(StorageOp::SyncData), 1);
        assert_eq!(storage.bytes_written(), 2);
        storage.reset_counts();
        assert_eq!(storage.op_count(StorageOp::Write), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lock_exclusive_refuses_a_second_holder() {
        let dir = temp_dir("lock");
        let storage = FsStorage;
        let path = dir.join("LOCK");
        let _held = storage.lock_exclusive(&path).unwrap();
        let err = storage.lock_exclusive(&path).expect_err("held elsewhere");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        fs::remove_dir_all(&dir).ok();
    }
}
