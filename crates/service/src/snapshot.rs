//! Versioned on-disk snapshots of the serving state.
//!
//! A snapshot captures the live [`QueryLog`] *and* the
//! [`QueryFragmentGraph`] built from it, so a restarted service resumes
//! serving log-informed translations immediately — no re-parse and no QFG
//! rebuild of a potentially multi-million-entry log.
//!
//! # Format (version 3)
//!
//! ```text
//! TEMPLAR-SNAPSHOT v3 obscurity=NoConstOp [watermark=N] sections=K\n
//! [len u32 LE][crc32 u32 LE][name_len u16 LE][name][payload]   ← section 0
//! [len u32 LE][crc32 u32 LE][name_len u16 LE][name][payload]   ← section 1
//! …                                                            ← section K-1
//! ```
//!
//! The body is `K` independent *sections*, each framed exactly like a WAL
//! record (`len` counts the body after the 8-byte frame header; the CRC —
//! the same [`crate::wal::crc32`] — covers `name_len + name + payload`).
//! The payload of every section is one self-contained JSON document.
//! Sections appear in a fixed order:
//!
//! | section          | payload                                            |
//! |------------------|----------------------------------------------------|
//! | `meta`           | log length, log chunk count, query count, obscurity|
//! | `log/0` … `log/c-1` | chunks of ≤ [`LOG_SECTION_CHUNK`] logged queries|
//! | `qfg/fragments`  | the full interner table, dead slots as `null`      |
//! | `qfg/occurrences`| the raw `n_v` column, 0 for dead slots             |
//! | `qfg/adjacency`  | the compacted CSR baseline (offsets/neighbors/counts)|
//! | `qfg/runs`       | pending tiered delta runs, mutable delta last      |
//!
//! Compared to v2 — one monolithic JSON document that forced the writer to
//! materialize the entire serialized state (and a *compacted clone* of the
//! graph) in memory, and the reader to buffer and parse it all at once —
//! the sectioned layout is written and read **streaming**: the writer holds
//! one serialized section at a time and serializes the graph *as-is* (no
//! clone, no forced compaction — pending tiered runs survive a snapshot
//! verbatim), and the reader validates section-by-section, so a torn or
//! bit-flipped section is caught by length/CRC checks before any parsing.
//!
//! **Migration:** v2 snapshots still load natively (single-document body,
//! columnar validation), and v1 snapshots load by rebuilding the graph from
//! the stored log.  Both are only ever written back as v3.
//!
//! The header carries everything needed to *reject* a snapshot before
//! touching the (potentially large) body:
//!
//! * the magic string guards against feeding an arbitrary file in,
//! * the version gates format evolution,
//! * the obscurity level must match the configuration the service runs at —
//!   QFG counts produced at one obscurity level are meaningless at another,
//!   so a mismatch is a hard error rather than a silent accuracy bug,
//! * `sections=K` lets the reader detect a tail truncated on a section
//!   boundary (fewer sections than promised is corruption, not EOF).
//!
//! Structural damage below the framing layer (truncated CSR columns,
//! occurrence inconsistencies, duplicate interned fragments, negative
//! pending nets) is caught by [`QueryFragmentGraph::from_sections`]
//! validation and surfaces as [`SnapshotError::Corrupt`].
//!
//! The header may additionally carry `watermark=N` — the highest write-ahead
//! journal sequence number the snapshot covers (see [`crate::wal`]).
//! Recovery loads the snapshot and replays only the journal records above
//! the watermark.  Snapshots written outside the durable path omit the
//! token; readers treat that as watermark 0.
//!
//! Writes go through a *uniquely named* sibling temp file (pid + a
//! process-wide counter, so concurrent saves — even of targets sharing a
//! file stem, like `mas.v1` / `mas.v2` — never collide), are fsynced, and
//! land with an atomic rename followed by a parent-directory fsync.  A crash
//! mid-write can never leave a truncated snapshot at the target path, and a
//! power loss after the rename cannot resurrect the old file under the new
//! name.

use crate::error::SnapshotError;
use crate::storage::{FsStorage, Storage};
use crate::wal::crc32;
use serde::{Deserialize, Serialize};
use sqlparse::Query;
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use templar_core::{Obscurity, QueryFragmentGraph, QueryLog};

/// First token of every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "TEMPLAR-SNAPSHOT";
/// The format version this build writes.
pub const SNAPSHOT_VERSION: u32 = 3;
/// The oldest format version this build still reads (via migration).
pub const SNAPSHOT_MIN_SUPPORTED_VERSION: u32 = 1;
/// Logged queries per `log/<i>` section: bounds how much of the log a
/// streaming reader or writer holds decoded at any moment.
pub const LOG_SECTION_CHUNK: usize = 4096;

/// Bytes of framing per section: `len: u32` + `crc32: u32`.
const SECTION_FRAME_HEADER: usize = 8;
/// Largest section body a reader will buffer (1 GiB): a garbage length read
/// from a damaged frame must not drive a giant allocation.
const MAX_SECTION_BYTES: u32 = 1 << 30;
/// Longest header line a reader will scan for the newline terminator.
const MAX_HEADER_BYTES: u64 = 4096;

/// The deserialized content of a snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The query log at capture time.
    pub log: QueryLog,
    /// The Query Fragment Graph over that log.
    pub qfg: QueryFragmentGraph,
}

/// Serialize the serving state to `path` (atomic replace, format v3).
/// Returns the total bytes written (header + all framed sections).
pub fn write_snapshot(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
) -> Result<u64, SnapshotError> {
    write_snapshot_with_watermark(path, log, qfg, None)
}

/// Serialize the serving state to `path`, optionally recording the journal
/// sequence number the snapshot covers (the recovery watermark).  Returns
/// the total bytes written so callers can surface snapshot size as a metric
/// without a second `stat`.
pub fn write_snapshot_with_watermark(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
    watermark: Option<u64>,
) -> Result<u64, SnapshotError> {
    write_snapshot_with(&FsStorage, path, log, qfg, watermark)
}

/// [`write_snapshot_with_watermark`] over an explicit [`Storage`] (fault
/// injection in tests; [`FsStorage`] in production).
pub fn write_snapshot_with(
    storage: &dyn Storage,
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
    watermark: Option<u64>,
) -> Result<u64, SnapshotError> {
    let log_chunks = log.len().div_ceil(LOG_SECTION_CHUNK);
    let sections = 5 + log_chunks;
    let mut header = format!(
        "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} obscurity={}",
        qfg.obscurity().name()
    );
    if let Some(watermark) = watermark {
        header.push_str(&format!(" watermark={watermark}"));
    }
    header.push_str(&format!(" sections={sections}\n"));
    // A unique sibling temp name per write: `path.with_extension("tmp")`
    // would collide for concurrent saves of targets sharing a stem
    // (`mas.v1` / `mas.v2` both map to `mas.tmp`) — one writer's rename
    // would then publish the other's half-written bytes.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            SnapshotError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "snapshot path has no file name",
            ))
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = parent.join(format!(
        ".{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| -> Result<u64, SnapshotError> {
        let file = storage.create(&tmp)?;
        let mut out = BufWriter::new(file);
        let mut bytes = header.len() as u64;
        out.write_all(header.as_bytes())?;
        // Stream one section at a time: each `write_section` serializes its
        // payload, frames it, and drops it before the next is built — the
        // writer never materializes the whole body (or a clone of the
        // graph; the columns serialize as-is, pending runs included).
        let meta = serde::Value::Map(vec![
            (
                "obscurity".to_string(),
                serde::Value::Str(qfg.obscurity().name().to_string()),
            ),
            ("log_len".to_string(), serde::Value::U64(log.len() as u64)),
            (
                "log_chunks".to_string(),
                serde::Value::U64(log_chunks as u64),
            ),
            (
                "query_count".to_string(),
                serde::Value::U64(qfg.query_count() as u64),
            ),
        ]);
        bytes += write_section(&mut out, "meta", &meta)?;
        let queries = log.queries();
        for chunk in 0..log_chunks {
            let lo = chunk * LOG_SECTION_CHUNK;
            let hi = (lo + LOG_SECTION_CHUNK).min(queries.len());
            let payload = serde::Value::Seq(
                queries
                    .iter()
                    .skip(lo)
                    .take(hi - lo)
                    .map(|q| q.to_value())
                    .collect(),
            );
            bytes += write_section(&mut out, &format!("log/{chunk}"), &payload)?;
        }
        bytes += write_section(&mut out, "qfg/fragments", &qfg.fragments_section())?;
        bytes += write_section(&mut out, "qfg/occurrences", &qfg.occurrences_section())?;
        bytes += write_section(&mut out, "qfg/adjacency", &qfg.adjacency_section())?;
        bytes += write_section(&mut out, "qfg/runs", &qfg.runs_section())?;
        let mut file = out
            .into_inner()
            .map_err(|e| SnapshotError::Io(e.into_error()))?;
        // The bytes must be durable *before* the rename publishes the
        // name, or a power loss could leave a valid name over garbage.
        file.sync_all()?;
        drop(file);
        storage.rename(&tmp, path)?;
        // And the rename itself must be durable: fsync the directory entry.
        storage.sync_dir(&parent)?;
        Ok(bytes)
    })();
    if result.is_err() {
        storage.remove_file(&tmp).ok();
    }
    result
}

/// Frame one section: `[len][crc][name_len][name][payload]`, CRC over
/// everything after the 8-byte frame header.  Returns the framed size.
fn write_section(
    out: &mut impl Write,
    name: &str,
    payload: &serde::Value,
) -> Result<u64, SnapshotError> {
    let json = serde_json::to_string(payload).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    let mut body = Vec::with_capacity(2 + name.len() + json.len());
    body.extend_from_slice(&(name.len() as u16).to_le_bytes());
    body.extend_from_slice(name.as_bytes());
    body.extend_from_slice(json.as_bytes());
    if body.len() as u64 > MAX_SECTION_BYTES as u64 {
        return Err(SnapshotError::Corrupt(format!(
            "section `{name}` exceeds the {MAX_SECTION_BYTES}-byte frame limit"
        )));
    }
    out.write_all(&(body.len() as u32).to_le_bytes())?;
    out.write_all(&crc32(&body).to_le_bytes())?;
    out.write_all(&body)?;
    Ok((SECTION_FRAME_HEADER + body.len()) as u64)
}

/// Read one framed section: validates the length bound and the CRC before
/// parsing the payload, so torn or bit-flipped sections surface as
/// [`SnapshotError::Corrupt`] without any JSON work.
fn read_section(reader: &mut impl Read) -> Result<(String, serde::Value), SnapshotError> {
    let mut frame = [0u8; SECTION_FRAME_HEADER];
    reader.read_exact(&mut frame).map_err(eof_is_torn)?;
    let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
    let stored_crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
    if !(2..=MAX_SECTION_BYTES).contains(&len) {
        return Err(SnapshotError::Corrupt(format!(
            "section frame length {len} out of range"
        )));
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body).map_err(eof_is_torn)?;
    if crc32(&body) != stored_crc {
        return Err(SnapshotError::Corrupt("section CRC mismatch".to_string()));
    }
    let name_len = u16::from_le_bytes([body[0], body[1]]) as usize;
    if 2 + name_len > body.len() {
        return Err(SnapshotError::Corrupt(
            "section name overruns its frame".to_string(),
        ));
    }
    let name = std::str::from_utf8(&body[2..2 + name_len])
        .map_err(|_| SnapshotError::Corrupt("section name is not UTF-8".to_string()))?
        .to_string();
    let payload = std::str::from_utf8(&body[2 + name_len..])
        .map_err(|_| SnapshotError::Corrupt(format!("section `{name}` payload is not UTF-8")))?;
    let value = serde_json::parse_value(payload)
        .map_err(|e| SnapshotError::Corrupt(format!("section `{name}`: {e}")))?;
    Ok((name, value))
}

/// A short read inside a section frame is a torn snapshot, not an I/O fault
/// of this process.
fn eof_is_torn(e: std::io::Error) -> SnapshotError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        SnapshotError::Corrupt("torn snapshot: section frame truncated".to_string())
    } else {
        SnapshotError::Io(e)
    }
}

/// Read and validate a snapshot, rejecting wrong magic, unsupported versions
/// and — crucially — snapshots captured at a different obscurity level than
/// `expected`.  Version 1 snapshots are migrated on the fly (see the module
/// docs), version 2 is read as a single columnar document, and version 3 is
/// read streaming, section by section.
pub fn read_snapshot(path: &Path, expected: Obscurity) -> Result<Snapshot, SnapshotError> {
    read_snapshot_with_watermark(path, expected).map(|(snapshot, _)| snapshot)
}

/// [`read_snapshot`], additionally returning the journal watermark recorded
/// in the header (0 when the snapshot was written outside the durable path).
pub fn read_snapshot_with_watermark(
    path: &Path,
    expected: Obscurity,
) -> Result<(Snapshot, u64), SnapshotError> {
    read_snapshot_from(&FsStorage, path, expected)
}

/// [`read_snapshot_with_watermark`] over an explicit [`Storage`].
pub fn read_snapshot_from(
    storage: &dyn Storage,
    path: &Path,
    expected: Obscurity,
) -> Result<(Snapshot, u64), SnapshotError> {
    let file = storage.open_read(path)?;
    let mut reader = BufReader::new(file);
    let mut line = Vec::new();
    (&mut reader)
        .take(MAX_HEADER_BYTES)
        .read_until(b'\n', &mut line)?;
    if line.last() != Some(&b'\n') {
        return Err(SnapshotError::BadMagic);
    }
    line.pop();
    let header = std::str::from_utf8(&line).map_err(|_| SnapshotError::BadMagic)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(SNAPSHOT_MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or(SnapshotError::BadMagic)?;
    if !(SNAPSHOT_MIN_SUPPORTED_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let obscurity = parts
        .next()
        .and_then(|v| v.strip_prefix("obscurity="))
        .and_then(parse_obscurity)
        .ok_or_else(|| SnapshotError::Corrupt("missing obscurity in header".to_string()))?;
    if obscurity != expected {
        return Err(SnapshotError::ObscurityMismatch {
            expected,
            found: obscurity,
        });
    }
    // Optional trailing tokens.  A malformed value is corruption — e.g.
    // recovering with watermark 0 would double-apply every journaled entry.
    let mut watermark = 0u64;
    let mut sections: Option<u64> = None;
    for token in parts {
        if let Some(v) = token.strip_prefix("watermark=") {
            watermark = v.parse::<u64>().map_err(|_| {
                SnapshotError::Corrupt(format!("unparsable header token `{token}`"))
            })?;
        } else if let Some(v) = token.strip_prefix("sections=") {
            sections = Some(v.parse::<u64>().map_err(|_| {
                SnapshotError::Corrupt(format!("unparsable header token `{token}`"))
            })?);
        } else {
            return Err(SnapshotError::Corrupt(format!(
                "unparsable header token `{token}`"
            )));
        }
    }
    let snapshot = match version {
        1 | 2 => {
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            if version == 1 {
                migrate_v1(&body, obscurity)?
            } else {
                serde_json::from_str::<Snapshot>(&body)
                    .map_err(|e| SnapshotError::Corrupt(e.to_string()))?
            }
        }
        _ => {
            let sections = sections.ok_or_else(|| {
                SnapshotError::Corrupt("v3 header is missing its section count".to_string())
            })?;
            read_v3_body(&mut reader, sections, obscurity)?
        }
    };
    if snapshot.qfg.obscurity() != obscurity {
        return Err(SnapshotError::Corrupt(
            "body obscurity disagrees with header".to_string(),
        ));
    }
    Ok((snapshot, watermark))
}

/// Decode the sectioned v3 body: sections arrive in the fixed order the
/// writer produces, each CRC-validated before parsing, with the section
/// count cross-checked against the header and the `meta` section and a
/// trailing-garbage probe after the final section.
fn read_v3_body(
    reader: &mut impl Read,
    sections: u64,
    obscurity: Obscurity,
) -> Result<Snapshot, SnapshotError> {
    let mut expect = |want: &str| -> Result<serde::Value, SnapshotError> {
        let (name, payload) = read_section(reader)?;
        if name != want {
            return Err(SnapshotError::Corrupt(format!(
                "expected section `{want}`, found `{name}`"
            )));
        }
        Ok(payload)
    };
    let meta = expect("meta")?;
    let meta_fields = meta
        .as_map()
        .ok_or_else(|| SnapshotError::Corrupt("meta section is not a map".to_string()))?;
    let meta_u64 = |key: &str| -> Result<u64, SnapshotError> {
        meta_fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
            .ok_or_else(|| SnapshotError::Corrupt(format!("meta section is missing `{key}`")))
    };
    let meta_obscurity = meta_fields
        .iter()
        .find(|(k, _)| k == "obscurity")
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| SnapshotError::Corrupt("meta section is missing `obscurity`".to_string()))?;
    // The header line is outside any CRC; the meta section repeats the
    // obscurity *inside* one, so a flipped header byte cannot silently
    // serve counts captured at another level.
    if meta_obscurity != obscurity.name() {
        return Err(SnapshotError::Corrupt(
            "body obscurity disagrees with header".to_string(),
        ));
    }
    let log_len = meta_u64("log_len")?;
    let log_chunks = meta_u64("log_chunks")?;
    let query_count = meta_u64("query_count")?;
    if sections != 5 + log_chunks {
        return Err(SnapshotError::Corrupt(format!(
            "header promises {sections} sections but meta implies {}",
            5 + log_chunks
        )));
    }
    let mut queries: Vec<Query> = Vec::with_capacity(log_len.min(1 << 20) as usize);
    for chunk in 0..log_chunks {
        let payload = expect(&format!("log/{chunk}"))?;
        let entries = payload.as_seq().ok_or_else(|| {
            SnapshotError::Corrupt(format!("log chunk {chunk} is not a sequence"))
        })?;
        for entry in entries {
            queries.push(
                Query::from_value(entry)
                    .map_err(|e| SnapshotError::Corrupt(format!("log chunk {chunk}: {e}")))?,
            );
        }
    }
    if queries.len() as u64 != log_len {
        return Err(SnapshotError::Corrupt(format!(
            "log sections hold {} queries, meta promises {log_len}",
            queries.len()
        )));
    }
    let fragments = expect("qfg/fragments")?;
    let occurrences = expect("qfg/occurrences")?;
    let adjacency = expect("qfg/adjacency")?;
    let runs = expect("qfg/runs")?;
    let mut probe = [0u8; 1];
    if reader.read(&mut probe)? != 0 {
        return Err(SnapshotError::Corrupt(
            "trailing bytes after the final section".to_string(),
        ));
    }
    let qfg = QueryFragmentGraph::from_sections(
        obscurity,
        query_count,
        &fragments,
        &occurrences,
        &adjacency,
        &runs,
    )
    .map_err(SnapshotError::Corrupt)?;
    Ok(Snapshot {
        log: QueryLog::from_queries(queries),
        qfg,
    })
}

/// Load a v1 body: deserialize the stored log and rebuild the columnar graph
/// from it.  Ingest-from-empty equals the batch build the v1 writer
/// serialized (property-tested), so translations served from the migrated
/// state are identical.
fn migrate_v1(body: &str, obscurity: Obscurity) -> Result<Snapshot, SnapshotError> {
    let value = serde_json::parse_value(body).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    let entries = value
        .as_map()
        .ok_or_else(|| SnapshotError::Corrupt("v1 body is not a JSON object".to_string()))?;
    let log_value = entries
        .iter()
        .find(|(k, _)| k == "log")
        .map(|(_, v)| v)
        .ok_or_else(|| SnapshotError::Corrupt("v1 body is missing its log".to_string()))?;
    let log = QueryLog::from_value(log_value)
        .map_err(|e| SnapshotError::Corrupt(format!("v1 log: {e}")))?;
    let qfg = QueryFragmentGraph::build(&log, obscurity);
    Ok(Snapshot { log, qfg })
}

fn parse_obscurity(name: &str) -> Option<Obscurity> {
    Obscurity::ALL.into_iter().find(|o| o.name() == name)
}

/// Write a snapshot in the retired v2 format: one monolithic JSON document
/// holding the log and the *compacted* columnar graph.  Kept so migration
/// tests (and the v2→v3 property suite) can produce byte-faithful v2
/// artifacts with the writer this build no longer uses in production.
pub fn write_snapshot_v2(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
) -> Result<(), SnapshotError> {
    let header = format!("{SNAPSHOT_MAGIC} v2 obscurity={}\n", qfg.obscurity().name());
    let body_value = serde::Value::Map(vec![
        ("log".to_string(), serde::Serialize::to_value(log)),
        ("qfg".to_string(), serde::Serialize::to_value(qfg)),
    ]);
    let body =
        serde_json::to_string(&body_value).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    fs::write(path, header + &body)?;
    Ok(())
}

/// Write a snapshot in the retired v1 format: `n_v` as `[fragment, count]`
/// pairs and `n_e` as `[[fragment, fragment], count]` pairs, both in the
/// canonical serde ordering the old derived writer produced.  Kept only so
/// tests can prove the migration path against byte-faithful v1 artifacts.
#[cfg(test)]
pub(crate) fn write_snapshot_v1(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
) -> Result<(), SnapshotError> {
    use serde::{canonical_cmp, Value};
    let header = format!("{SNAPSHOT_MAGIC} v1 obscurity={}\n", qfg.obscurity().name());
    let mut occurrence_pairs: Vec<Value> = qfg
        .fragments()
        .map(|(fragment, count)| Value::Seq(vec![fragment.to_value(), Value::U64(count)]))
        .collect();
    occurrence_pairs.sort_by(canonical_cmp);
    let mut co_occurrence_pairs: Vec<Value> = qfg
        .co_occurrence_entries()
        .into_iter()
        .map(|(a, b, count)| {
            // The v1 map key was the pair with the lexicographically smaller
            // fragment first.
            let (first, second) = if a <= b { (a, b) } else { (b, a) };
            Value::Seq(vec![
                Value::Seq(vec![first.to_value(), second.to_value()]),
                Value::U64(count),
            ])
        })
        .collect();
    co_occurrence_pairs.sort_by(canonical_cmp);
    let qfg_value = Value::Map(vec![
        ("obscurity".to_string(), qfg.obscurity().to_value()),
        ("occurrences".to_string(), Value::Seq(occurrence_pairs)),
        (
            "co_occurrences".to_string(),
            Value::Seq(co_occurrence_pairs),
        ),
        (
            "query_count".to_string(),
            Value::U64(qfg.query_count() as u64),
        ),
    ]);
    let body_value = Value::Map(vec![
        ("log".to_string(), log.to_value()),
        ("qfg".to_string(), qfg_value),
    ]);
    let body =
        serde_json::to_string(&body_value).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    fs::write(path, header + &body)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("templar-snap-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_state(obscurity: Obscurity) -> (QueryLog, QueryFragmentGraph) {
        let (log, skipped) = QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 2000",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
            "SELECT j.name FROM journal j",
        ]);
        assert_eq!(skipped, 0);
        let qfg = QueryFragmentGraph::build(&log, obscurity);
        (log, qfg)
    }

    #[test]
    fn round_trip_preserves_log_and_counts() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("roundtrip");
        let bytes = write_snapshot(&path, &log, &qfg).unwrap();
        assert_eq!(
            bytes,
            fs::metadata(&path).unwrap().len(),
            "the writer's byte count must match the file on disk"
        );
        let snapshot = read_snapshot(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(snapshot.log, log);
        assert_eq!(snapshot.qfg, qfg);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_preserves_pending_runs_without_compacting() {
        // The v2 writer compacted a clone of the graph; the v3 writer
        // serializes pending tiered runs verbatim, so a snapshot taken
        // mid-churn restores with the same pending work.
        let (log, mut qfg) = sample_state(Obscurity::NoConstOp);
        let mut log = log;
        let (extra, _) = QueryLog::from_sql([
            "SELECT p.year FROM publication p",
            "SELECT p.title FROM publication p WHERE p.year > 2011",
        ]);
        for query in extra.queries() {
            log.push(query.clone());
            qfg.ingest(query);
        }
        assert!(!qfg.is_compacted());
        let pending = qfg.pending_delta_len();
        assert!(pending > 0);
        let path = temp_path("pending-runs");
        write_snapshot(&path, &log, &qfg).unwrap();
        let snapshot = read_snapshot(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(snapshot.qfg, qfg);
        assert!(!snapshot.qfg.is_compacted());
        assert_eq!(snapshot.qfg.pending_delta_len(), pending);
        fs::remove_file(&path).ok();
    }

    /// Regression: the old writer derived its temp file with
    /// `path.with_extension("tmp")`, so two snapshot targets sharing a file
    /// stem (`mas.v1` / `mas.v2`) raced on the *same* `mas.tmp` — one save
    /// could publish the other's half-written bytes.  The unique sibling
    /// temp name makes concurrent saves of stem-sharing targets safe.
    #[test]
    fn concurrent_saves_sharing_a_stem_do_not_collide() {
        let (log_a, qfg_a) = sample_state(Obscurity::NoConstOp);
        let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
        let mut log_b = log_a.clone();
        log_b.push(extra.queries()[0].clone());
        let qfg_b = QueryFragmentGraph::build(&log_b, Obscurity::NoConstOp);

        let dir =
            std::env::temp_dir().join(format!("templar-snap-concurrent-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path_a = dir.join("mas.v1");
        let path_b = dir.join("mas.v2");
        assert_eq!(
            path_a.with_extension("tmp"),
            path_b.with_extension("tmp"),
            "the regression needs targets whose naive temp paths collide"
        );

        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                for _ in 0..20 {
                    write_snapshot(&path_a, &log_a, &qfg_a).unwrap();
                }
            });
            let b = scope.spawn(|| {
                for _ in 0..20 {
                    write_snapshot(&path_b, &log_b, &qfg_b).unwrap();
                }
            });
            a.join().unwrap();
            b.join().unwrap();
        });

        // Each target holds its own writer's state, not the sibling's.
        let snap_a = read_snapshot(&path_a, Obscurity::NoConstOp).unwrap();
        let snap_b = read_snapshot(&path_b, Obscurity::NoConstOp).unwrap();
        assert_eq!(snap_a.log, log_a);
        assert_eq!(snap_a.qfg, qfg_a);
        assert_eq!(snap_b.log, log_b);
        assert_eq!(snap_b.qfg, qfg_b);
        // No temp litter survives a successful save.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watermark_round_trips_and_defaults_to_zero() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("watermark");
        write_snapshot_with_watermark(&path, &log, &qfg, Some(42)).unwrap();
        let text = fs::read(&path).unwrap();
        assert!(
            text.starts_with(b"TEMPLAR-SNAPSHOT v3 obscurity=NoConstOp watermark=42 sections=6\n")
        );
        let (snapshot, watermark) =
            read_snapshot_with_watermark(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(watermark, 42);
        assert_eq!(snapshot.log, log);
        // The plain reader still accepts a watermarked snapshot.
        assert_eq!(read_snapshot(&path, Obscurity::NoConstOp).unwrap().qfg, qfg);
        // And a plain snapshot reads back with watermark 0.
        write_snapshot(&path, &log, &qfg).unwrap();
        let (_, watermark) = read_snapshot_with_watermark(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(watermark, 0);
        // A mangled watermark token is corruption, not silently 0.
        fs::write(
            &path,
            "TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp watermark=banana\n{}",
        )
        .unwrap();
        assert!(matches!(
            read_snapshot_with_watermark(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn written_snapshots_carry_the_v3_header() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("v3header");
        write_snapshot(&path, &log, &qfg).unwrap();
        let text = fs::read(&path).unwrap();
        assert!(text.starts_with(b"TEMPLAR-SNAPSHOT v3 obscurity=NoConstOp sections=6\n"));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_snapshots_still_load_natively() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("v2load");
        write_snapshot_v2(&path, &log, &qfg).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp\n"));
        let snapshot = read_snapshot(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(snapshot.log, log);
        assert_eq!(snapshot.qfg, qfg);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_snapshots_migrate_to_identical_state() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("v1migrate");
        write_snapshot_v1(&path, &log, &qfg).unwrap();
        let migrated = read_snapshot(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(migrated.log, log);
        assert_eq!(migrated.qfg, qfg, "migrated counts must be identical");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_snapshots_respect_the_obscurity_gate() {
        let (log, qfg) = sample_state(Obscurity::NoConst);
        let path = temp_path("v1gate");
        write_snapshot_v1(&path, &log, &qfg).unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::ObscurityMismatch { .. })
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn obscurity_mismatch_is_rejected() {
        let (log, qfg) = sample_state(Obscurity::NoConst);
        let path = temp_path("mismatch");
        write_snapshot(&path, &log, &qfg).unwrap();
        match read_snapshot(&path, Obscurity::NoConstOp) {
            Err(SnapshotError::ObscurityMismatch { expected, found }) => {
                assert_eq!(expected, Obscurity::NoConstOp);
                assert_eq!(found, Obscurity::NoConst);
            }
            other => panic!("expected ObscurityMismatch, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_bad_version_are_rejected() {
        let path = temp_path("magic");
        fs::write(&path, "NOT-A-SNAPSHOT v2 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::BadMagic)
        ));
        fs::write(&path, "TEMPLAR-SNAPSHOT v99 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
        fs::write(&path, "TEMPLAR-SNAPSHOT v0 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::UnsupportedVersion { found: 0, .. })
        ));
        // A header with no newline within the scan bound is not a snapshot.
        fs::write(&path, "TEMPLAR-SNAPSHOT v3 obscurity=Full sections=6").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::BadMagic)
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let path = temp_path("corrupt");
        fs::write(
            &path,
            "TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp\n{this is not json",
        )
        .unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let path = temp_path("corrupt-header");
        // Version present but obscurity mangled.
        fs::write(&path, "TEMPLAR-SNAPSHOT v2 obscurity=Sideways\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        // Obscurity field missing entirely.
        fs::write(&path, "TEMPLAR-SNAPSHOT v2\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        // A v3 header without its section count cannot be read.
        fs::write(&path, "TEMPLAR-SNAPSHOT v3 obscurity=NoConstOp\n").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_csr_is_rejected_as_corrupt() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("truncated-csr");
        write_snapshot_v2(&path, &log, &qfg).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        // Drop one entry from the counts column: offsets now promise more
        // edges than the columns hold.
        let truncated = {
            let marker = "\"counts\":[";
            let start = text.find(marker).expect("counts column present") + marker.len();
            let end = text[start..].find(']').unwrap() + start;
            let column = &text[start..end];
            let shorter = match column.rfind(',') {
                Some(last_comma) => &column[..last_comma],
                None => "",
            };
            format!("{}{}{}", &text[..start], shorter, &text[end..])
        };
        fs::write(&path, truncated).unwrap();
        match read_snapshot(&path, Obscurity::NoConstOp) {
            Err(SnapshotError::Corrupt(detail)) => {
                assert!(detail.contains("truncated CSR"), "detail was: {detail}")
            }
            other => panic!("expected Corrupt for a truncated CSR, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    /// Walk the section frames of a v3 snapshot, returning the byte offset
    /// where each section ends (the first offset is the end of the header).
    fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let mut boundaries = vec![header_end];
        let mut at = header_end;
        while at + SECTION_FRAME_HEADER <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += SECTION_FRAME_HEADER + len;
            boundaries.push(at);
        }
        assert_eq!(at, bytes.len(), "walker must land exactly on EOF");
        boundaries
    }

    /// The snapshot-section analogue of the WAL torn-write matrix: a crash
    /// that leaves a prefix of the temp file — cut exactly on a section
    /// boundary or anywhere inside a frame — must never load as a valid
    /// snapshot.  (In production the atomic rename already hides torn temp
    /// files; this pins the reader's own defense in depth.)
    #[test]
    fn torn_sections_are_rejected_at_every_boundary() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("torn-sections");
        write_snapshot_with_watermark(&path, &log, &qfg, Some(7)).unwrap();
        let bytes = fs::read(&path).unwrap();
        let boundaries = section_boundaries(&bytes);
        assert_eq!(boundaries.len(), 7, "6 sections + the header boundary");
        let torn = temp_path("torn-sections-cut");
        let mut cuts: Vec<usize> = Vec::new();
        for &b in &boundaries[..boundaries.len() - 1] {
            // On the boundary, mid-frame-header, and mid-body.
            cuts.extend([b, b + 3, b + SECTION_FRAME_HEADER + 1]);
        }
        for cut in cuts {
            fs::write(&torn, &bytes[..cut]).unwrap();
            match read_snapshot(&torn, Obscurity::NoConstOp) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
        // A single flipped payload bit is caught by the section CRC.
        let mut flipped = bytes.clone();
        let target = boundaries[1] + SECTION_FRAME_HEADER + 4;
        flipped[target] ^= 0x01;
        fs::write(&torn, &flipped).unwrap();
        match read_snapshot(&torn, Obscurity::NoConstOp) {
            Err(SnapshotError::Corrupt(detail)) => {
                assert!(detail.contains("CRC"), "detail was: {detail}")
            }
            other => panic!("expected a CRC failure, got {other:?}"),
        }
        // Trailing garbage after the last section is corruption too.
        let mut extended = bytes.clone();
        extended.push(0);
        fs::write(&torn, &extended).unwrap();
        assert!(matches!(
            read_snapshot(&torn, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        // And the pristine bytes still load.
        fs::write(&torn, &bytes).unwrap();
        read_snapshot(&torn, Obscurity::NoConstOp).unwrap();
        fs::remove_file(&path).ok();
        fs::remove_file(&torn).ok();
    }

    /// The end-to-end migration proof: a service state persisted with the
    /// old v1 writer restores through the current loader and serves
    /// *identical* translations (queries and scores) to the same state
    /// persisted as v3.
    #[test]
    fn v1_snapshot_restores_and_serves_identically_under_v3() {
        use crate::config::ServiceConfig;
        use crate::server::TemplarService;
        use relational::Database;
        use std::sync::Arc;
        use templar_core::TemplarConfig;

        let db = Arc::new(academic_db());
        let (log, skipped) = QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 1995",
            "SELECT j.name FROM journal j",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
        ]);
        assert_eq!(skipped, 0);
        let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let v1_path = temp_path("serve-v1");
        let v3_path = temp_path("serve-v3");
        write_snapshot_v1(&v1_path, &log, &qfg).unwrap();
        write_snapshot(&v3_path, &log, &qfg).unwrap();

        let nlq = papers_after_2000();
        let from_v1 = TemplarService::spawn_from_snapshot(
            Arc::clone(&db),
            &v1_path,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .expect("v1 snapshots must keep loading via the migration path");
        let from_v3 = TemplarService::spawn_from_snapshot(
            Arc::<Database>::clone(&db),
            &v3_path,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap();
        let a = from_v1.translate(&nlq).unwrap();
        let b = from_v3.translate(&nlq).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query.to_string(), y.query.to_string());
            assert!((x.score - y.score).abs() < 1e-12);
        }
        // Re-saving the migrated state produces a v3 snapshot.
        from_v1.save_snapshot(&v1_path).unwrap();
        let text = fs::read(&v1_path).unwrap();
        assert!(text.starts_with(b"TEMPLAR-SNAPSHOT v3 "));
        fs::remove_file(&v1_path).ok();
        fs::remove_file(&v3_path).ok();
    }

    fn academic_db() -> relational::Database {
        use relational::{DataType, Database, Schema};
        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        db
    }

    fn papers_after_2000() -> nlidb::Nlq {
        use sqlparse::BinOp;
        use templar_core::{Keyword, KeywordMetadata};
        nlidb::Nlq::new(
            "Return the papers after 2000",
            vec![
                (Keyword::new("papers"), KeywordMetadata::select()),
                (
                    Keyword::new("after 2000"),
                    KeywordMetadata::filter_with_op(BinOp::Gt),
                ),
            ],
            vec![],
        )
    }

    /// A snapshot written by the *pre-refactor* build (checked in as a test
    /// fixture, byte-for-byte as its v2 writer produced it) must keep
    /// loading and serve byte-identical top-3 translations to a freshly
    /// built state over the same log.
    #[test]
    fn pre_refactor_v2_fixture_serves_byte_identical_translations() {
        use crate::config::ServiceConfig;
        use crate::server::TemplarService;
        use std::sync::Arc;
        use templar_core::TemplarConfig;

        let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("data")
            .join("pre_refactor_v2.snapshot");
        let db = Arc::new(academic_db());
        let snapshot = read_snapshot(&fixture, Obscurity::NoConstOp)
            .expect("the pre-refactor fixture must keep loading");
        let from_fixture = TemplarService::spawn_from_snapshot(
            Arc::clone(&db),
            &fixture,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap();
        // The same log, built fresh through the current code path.
        let fresh_qfg = QueryFragmentGraph::build(&snapshot.log, Obscurity::NoConstOp);
        assert_eq!(fresh_qfg, snapshot.qfg);
        let fresh_path = temp_path("fixture-fresh");
        write_snapshot(&fresh_path, &snapshot.log, &fresh_qfg).unwrap();
        let from_fresh = TemplarService::spawn_from_snapshot(
            db,
            &fresh_path,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap();
        let nlq = papers_after_2000();
        let a = from_fixture.translate(&nlq).unwrap();
        let b = from_fresh.translate(&nlq).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query.to_string(), y.query.to_string());
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "fixture-served scores must be byte-identical"
            );
        }
        fs::remove_file(&fresh_path).ok();
    }

    #[test]
    fn columnar_snapshots_are_smaller_than_v1() {
        // The columnar sections write each fragment once; the v1 pair
        // encoding repeated fragments once per incident edge.
        let mut sql: Vec<String> = Vec::new();
        for year in 0..40 {
            sql.push(format!(
                "SELECT p.title, j.name FROM publication p, journal j \
                 WHERE p.jid = j.jid AND p.year > {year}"
            ));
        }
        let (log, _) = QueryLog::from_sql(sql.iter().map(String::as_str));
        let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let v1 = temp_path("size-v1");
        let v3 = temp_path("size-v3");
        write_snapshot_v1(&v1, &log, &qfg).unwrap();
        let v3_len = write_snapshot(&v3, &log, &qfg).unwrap();
        let v1_len = fs::metadata(&v1).unwrap().len();
        assert!(
            v3_len < v1_len,
            "v3 snapshot ({v3_len} B) should be smaller than v1 ({v1_len} B)"
        );
        fs::remove_file(&v1).ok();
        fs::remove_file(&v3).ok();
    }

    /// Write-side torn matrix for the sectioned v3 snapshot: crash the
    /// storage at a dense sweep of cumulative byte budgets (covering every
    /// section boundary of the write stream) and at every non-write fault
    /// site (temp-file create, fsync, rename, directory fsync).  An
    /// interrupted overwrite must never be observable: the previously
    /// published snapshot keeps loading byte-identically, and once the
    /// fault clears the overwrite succeeds.
    #[test]
    fn write_crash_matrix_preserves_the_published_snapshot() {
        use crate::storage::{FaultRule, FaultyStorage, StorageOp};

        let (log_a, qfg_a) = sample_state(Obscurity::NoConstOp);
        let mut log_b = log_a.clone();
        let mut qfg_b = qfg_a.clone();
        let (extra, _) = QueryLog::from_sql([
            "SELECT p.year FROM publication p",
            "SELECT p.title FROM publication p WHERE p.year > 2011",
        ]);
        for query in extra.queries() {
            log_b.push(query.clone());
            qfg_b.ingest(query);
        }

        let dir =
            std::env::temp_dir().join(format!("templar-snap-crash-matrix-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.templar");
        write_snapshot_with(&FsStorage, &path, &log_a, &qfg_a, Some(7)).unwrap();
        let published = fs::read(&path).unwrap();

        // Enumerate the fault surface of one clean overwrite, then restore
        // the published bytes.
        let counting = FaultyStorage::new();
        write_snapshot_with(counting.as_ref(), &path, &log_b, &qfg_b, Some(9)).unwrap();
        let total = counting.bytes_written();
        assert!(total > 0);
        fs::write(&path, &published).unwrap();

        let assert_published_intact = |case: &str| {
            assert_eq!(
                fs::read(&path).unwrap(),
                published,
                "{case}: a failed overwrite must leave the published snapshot byte-identical"
            );
            let (snapshot, watermark) = read_snapshot_with_watermark(&path, Obscurity::NoConstOp)
                .unwrap_or_else(|e| panic!("{case}: published snapshot unreadable: {e}"));
            assert_eq!(snapshot.log, log_a, "{case}");
            assert_eq!(snapshot.qfg, qfg_a, "{case}");
            assert_eq!(watermark, 7, "{case}");
        };

        // Byte-budget sweep: a crash inside any write — section headers,
        // section bodies, the final footer — with a torn prefix persisted.
        let budgets = (0..total).step_by(7).chain([total.saturating_sub(1)]);
        for budget in budgets {
            let case = format!("byte budget {budget}/{total}");
            let storage = FaultyStorage::new();
            storage.crash_after_write_bytes(budget);
            write_snapshot_with(storage.as_ref(), &path, &log_b, &qfg_b, Some(9))
                .expect_err("an interrupted write must report failure");
            assert_published_intact(&case);
            // The disk comes back: the overwrite must go through whole.
            storage.clear();
            write_snapshot_with(storage.as_ref(), &path, &log_b, &qfg_b, Some(9))
                .unwrap_or_else(|e| panic!("{case}: healed overwrite failed: {e}"));
            let (snapshot, watermark) =
                read_snapshot_with_watermark(&path, Obscurity::NoConstOp).unwrap();
            assert_eq!(
                snapshot.log, log_b,
                "{case}: healed snapshot must be the new state"
            );
            assert_eq!(watermark, 9, "{case}");
            fs::write(&path, &published).unwrap();
        }

        // Operation matrix: fail each create/fsync/rename/dir-sync site.  A
        // fault *before* the rename must leave the old snapshot untouched; a
        // fault *after* it (the directory fsync) legitimately leaves the new
        // one published but reported non-durable — the invariant in every
        // case is that the target parses as a *valid* snapshot that is
        // exactly the old state or exactly the new one, never a blend.
        for op in [
            StorageOp::Create,
            StorageOp::Write,
            StorageOp::SyncData,
            StorageOp::SyncAll,
            StorageOp::SetLen,
            StorageOp::Rename,
            StorageOp::SyncDir,
            StorageOp::RemoveFile,
        ] {
            for index in 0..counting.op_count(op) {
                let case = format!("op {op:?} index {index}");
                let storage = FaultyStorage::new();
                storage.inject(FaultRule::crash(op, index));
                match write_snapshot_with(storage.as_ref(), &path, &log_b, &qfg_b, Some(9)) {
                    // The site was absorbed (e.g. cleanup of a leftover
                    // temp file): the overwrite landed whole.
                    Ok(_) => {
                        let (snapshot, _) =
                            read_snapshot_with_watermark(&path, Obscurity::NoConstOp).unwrap();
                        assert_eq!(snapshot.log, log_b, "{case}");
                    }
                    Err(SnapshotError::Io(_)) => {
                        let (snapshot, watermark) =
                            read_snapshot_with_watermark(&path, Obscurity::NoConstOp)
                                .unwrap_or_else(|e| {
                                    panic!("{case}: target must stay a valid snapshot: {e}")
                                });
                        if watermark == 7 {
                            assert_eq!(
                                fs::read(&path).unwrap(),
                                published,
                                "{case}: surviving old snapshot must be byte-identical"
                            );
                            assert_eq!(snapshot.log, log_a, "{case}");
                        } else {
                            assert_eq!(watermark, 9, "{case}: old or new, never a blend");
                            assert_eq!(snapshot.log, log_b, "{case}");
                        }
                    }
                    Err(other) => panic!("{case}: expected an Io error, got {other}"),
                }
                fs::write(&path, &published).unwrap();
            }
        }

        fs::remove_dir_all(&dir).ok();
    }
}
