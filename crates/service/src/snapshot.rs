//! Versioned on-disk snapshots of the serving state.
//!
//! A snapshot captures the live [`QueryLog`] *and* the
//! [`QueryFragmentGraph`] built from it, so a restarted service resumes
//! serving log-informed translations immediately — no re-parse and no QFG
//! rebuild of a potentially multi-million-entry log.
//!
//! # Format (version 2)
//!
//! ```text
//! TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp\n   ← header line, ASCII
//! {"log": …, "qfg": …}                        ← body, one JSON document
//! ```
//!
//! The `qfg` body is the graph's columnar form: the interner table (live
//! fragments, densified to ids `0..n`), the occurrence column, and the CSR
//! adjacency (`offsets` / `neighbors` / `counts`).  Compared to the v1
//! format — which wrote every `n_v` / `n_e` entry as a
//! `[fragment, count]` / `[[fragment, fragment], count]` pair, repeating
//! each fragment once per incident edge — every fragment is written exactly
//! once and each edge costs two integers, so v2 snapshots are substantially
//! smaller and load without re-hashing every pair key.
//!
//! **Migration:** v1 snapshots still load.  A v1 body carries the complete
//! query log, and an ingest-from-empty build is property-tested equal to
//! the graph the v1 writer serialized, so the migration path deserializes
//! the log and rebuilds the columnar graph from it — same counts, new
//! representation.  The result is only ever written back as v2.
//!
//! The header carries everything needed to *reject* a snapshot before
//! parsing the (potentially large) body:
//!
//! * the magic string guards against feeding an arbitrary file in,
//! * the version gates format evolution,
//! * the obscurity level must match the configuration the service runs at —
//!   QFG counts produced at one obscurity level are meaningless at another,
//!   so a mismatch is a hard error rather than a silent accuracy bug.
//!
//! Structural damage below the header (truncated CSR columns, occurrence /
//! co-occurrence inconsistencies, duplicate interned fragments) is caught by
//! the columnar deserializer's validation and surfaces as
//! [`SnapshotError::Corrupt`].
//!
//! The header may additionally carry `watermark=N` — the highest write-ahead
//! journal sequence number the snapshot covers (see [`crate::wal`]).
//! Recovery loads the snapshot and replays only the journal records above
//! the watermark.  Snapshots written outside the durable path omit the
//! token; readers treat that as watermark 0.
//!
//! Writes go through a *uniquely named* sibling temp file (pid + a
//! process-wide counter, so concurrent saves — even of targets sharing a
//! file stem, like `mas.v1` / `mas.v2` — never collide), are fsynced, and
//! land with an atomic rename followed by a parent-directory fsync.  A crash
//! mid-write can never leave a truncated snapshot at the target path, and a
//! power loss after the rename cannot resurrect the old file under the new
//! name.

use crate::error::SnapshotError;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use templar_core::{Obscurity, QueryFragmentGraph, QueryLog};

/// First token of every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "TEMPLAR-SNAPSHOT";
/// The format version this build writes.
pub const SNAPSHOT_VERSION: u32 = 2;
/// The oldest format version this build still reads (via migration).
pub const SNAPSHOT_MIN_SUPPORTED_VERSION: u32 = 1;

/// The deserialized content of a snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The query log at capture time.
    pub log: QueryLog,
    /// The Query Fragment Graph over that log.
    pub qfg: QueryFragmentGraph,
}

/// Serialize the serving state to `path` (atomic replace, format v2).
pub fn write_snapshot(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
) -> Result<(), SnapshotError> {
    write_snapshot_with_watermark(path, log, qfg, None)
}

/// Serialize the serving state to `path`, optionally recording the journal
/// sequence number the snapshot covers (the recovery watermark).
pub fn write_snapshot_with_watermark(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
    watermark: Option<u64>,
) -> Result<(), SnapshotError> {
    let mut header = format!(
        "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} obscurity={}",
        qfg.obscurity().name()
    );
    if let Some(watermark) = watermark {
        header.push_str(&format!(" watermark={watermark}"));
    }
    header.push('\n');
    // Serialize from the borrows directly (same field layout as
    // [`Snapshot`]) — no intermediate clone of a potentially large state.
    let body_value = serde::Value::Map(vec![
        ("log".to_string(), serde::Serialize::to_value(log)),
        ("qfg".to_string(), serde::Serialize::to_value(qfg)),
    ]);
    let body =
        serde_json::to_string(&body_value).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    // A unique sibling temp name per write: `path.with_extension("tmp")`
    // would collide for concurrent saves of targets sharing a stem
    // (`mas.v1` / `mas.v2` both map to `mas.tmp`) — one writer's rename
    // would then publish the other's half-written bytes.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            SnapshotError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "snapshot path has no file name",
            ))
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = parent.join(format!(
        ".{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| -> Result<(), SnapshotError> {
        {
            use std::io::Write;
            let mut file = fs::File::create(&tmp)?;
            file.write_all(header.as_bytes())?;
            file.write_all(body.as_bytes())?;
            // The bytes must be durable *before* the rename publishes the
            // name, or a power loss could leave a valid name over garbage.
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // And the rename itself must be durable: fsync the directory entry.
        crate::wal::sync_dir(&parent)?;
        Ok(())
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// Read and validate a snapshot, rejecting wrong magic, unsupported versions
/// and — crucially — snapshots captured at a different obscurity level than
/// `expected`.  Version 1 snapshots are migrated on the fly (see the module
/// docs); version 2 is read natively.
pub fn read_snapshot(path: &Path, expected: Obscurity) -> Result<Snapshot, SnapshotError> {
    read_snapshot_with_watermark(path, expected).map(|(snapshot, _)| snapshot)
}

/// [`read_snapshot`], additionally returning the journal watermark recorded
/// in the header (0 when the snapshot was written outside the durable path).
pub fn read_snapshot_with_watermark(
    path: &Path,
    expected: Obscurity,
) -> Result<(Snapshot, u64), SnapshotError> {
    let text = fs::read_to_string(path)?;
    let (header, body) = text.split_once('\n').ok_or(SnapshotError::BadMagic)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(SNAPSHOT_MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or(SnapshotError::BadMagic)?;
    if !(SNAPSHOT_MIN_SUPPORTED_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let obscurity = parts
        .next()
        .and_then(|v| v.strip_prefix("obscurity="))
        .and_then(parse_obscurity)
        .ok_or_else(|| SnapshotError::Corrupt("missing obscurity in header".to_string()))?;
    if obscurity != expected {
        return Err(SnapshotError::ObscurityMismatch {
            expected,
            found: obscurity,
        });
    }
    // Optional trailing token; a snapshot without it covers no journal
    // records.  A malformed value is corruption — recovering with watermark
    // 0 would double-apply every journaled entry.
    let watermark = match parts.next() {
        Some(token) => token
            .strip_prefix("watermark=")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| SnapshotError::Corrupt(format!("unparsable header token `{token}`")))?,
        None => 0,
    };
    let snapshot = match version {
        1 => migrate_v1(body, obscurity)?,
        _ => serde_json::from_str::<Snapshot>(body)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
    };
    if snapshot.qfg.obscurity() != obscurity {
        return Err(SnapshotError::Corrupt(
            "body obscurity disagrees with header".to_string(),
        ));
    }
    Ok((snapshot, watermark))
}

/// Load a v1 body: deserialize the stored log and rebuild the columnar graph
/// from it.  Ingest-from-empty equals the batch build the v1 writer
/// serialized (property-tested), so translations served from the migrated
/// state are identical.
fn migrate_v1(body: &str, obscurity: Obscurity) -> Result<Snapshot, SnapshotError> {
    let value = serde_json::parse_value(body).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    let entries = value
        .as_map()
        .ok_or_else(|| SnapshotError::Corrupt("v1 body is not a JSON object".to_string()))?;
    let log_value = entries
        .iter()
        .find(|(k, _)| k == "log")
        .map(|(_, v)| v)
        .ok_or_else(|| SnapshotError::Corrupt("v1 body is missing its log".to_string()))?;
    let log = QueryLog::from_value(log_value)
        .map_err(|e| SnapshotError::Corrupt(format!("v1 log: {e}")))?;
    let qfg = QueryFragmentGraph::build(&log, obscurity);
    Ok(Snapshot { log, qfg })
}

fn parse_obscurity(name: &str) -> Option<Obscurity> {
    Obscurity::ALL.into_iter().find(|o| o.name() == name)
}

/// Write a snapshot in the retired v1 format: `n_v` as `[fragment, count]`
/// pairs and `n_e` as `[[fragment, fragment], count]` pairs, both in the
/// canonical serde ordering the old derived writer produced.  Kept only so
/// tests can prove the migration path against byte-faithful v1 artifacts.
#[cfg(test)]
pub(crate) fn write_snapshot_v1(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
) -> Result<(), SnapshotError> {
    use serde::{canonical_cmp, Value};
    let header = format!("{SNAPSHOT_MAGIC} v1 obscurity={}\n", qfg.obscurity().name());
    let mut occurrence_pairs: Vec<Value> = qfg
        .fragments()
        .map(|(fragment, count)| Value::Seq(vec![fragment.to_value(), Value::U64(count)]))
        .collect();
    occurrence_pairs.sort_by(canonical_cmp);
    let mut co_occurrence_pairs: Vec<Value> = qfg
        .co_occurrence_entries()
        .into_iter()
        .map(|(a, b, count)| {
            // The v1 map key was the pair with the lexicographically smaller
            // fragment first.
            let (first, second) = if a <= b { (a, b) } else { (b, a) };
            Value::Seq(vec![
                Value::Seq(vec![first.to_value(), second.to_value()]),
                Value::U64(count),
            ])
        })
        .collect();
    co_occurrence_pairs.sort_by(canonical_cmp);
    let qfg_value = Value::Map(vec![
        ("obscurity".to_string(), qfg.obscurity().to_value()),
        ("occurrences".to_string(), Value::Seq(occurrence_pairs)),
        (
            "co_occurrences".to_string(),
            Value::Seq(co_occurrence_pairs),
        ),
        (
            "query_count".to_string(),
            Value::U64(qfg.query_count() as u64),
        ),
    ]);
    let body_value = Value::Map(vec![
        ("log".to_string(), log.to_value()),
        ("qfg".to_string(), qfg_value),
    ]);
    let body =
        serde_json::to_string(&body_value).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    fs::write(path, header + &body)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("templar-snap-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_state(obscurity: Obscurity) -> (QueryLog, QueryFragmentGraph) {
        let (log, skipped) = QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 2000",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
            "SELECT j.name FROM journal j",
        ]);
        assert_eq!(skipped, 0);
        let qfg = QueryFragmentGraph::build(&log, obscurity);
        (log, qfg)
    }

    #[test]
    fn round_trip_preserves_log_and_counts() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("roundtrip");
        write_snapshot(&path, &log, &qfg).unwrap();
        let snapshot = read_snapshot(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(snapshot.log, log);
        assert_eq!(snapshot.qfg, qfg);
        fs::remove_file(&path).ok();
    }

    /// Regression: the old writer derived its temp file with
    /// `path.with_extension("tmp")`, so two snapshot targets sharing a file
    /// stem (`mas.v1` / `mas.v2`) raced on the *same* `mas.tmp` — one save
    /// could publish the other's half-written bytes.  The unique sibling
    /// temp name makes concurrent saves of stem-sharing targets safe.
    #[test]
    fn concurrent_saves_sharing_a_stem_do_not_collide() {
        let (log_a, qfg_a) = sample_state(Obscurity::NoConstOp);
        let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
        let mut log_b = log_a.clone();
        log_b.push(extra.queries()[0].clone());
        let qfg_b = QueryFragmentGraph::build(&log_b, Obscurity::NoConstOp);

        let dir =
            std::env::temp_dir().join(format!("templar-snap-concurrent-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path_a = dir.join("mas.v1");
        let path_b = dir.join("mas.v2");
        assert_eq!(
            path_a.with_extension("tmp"),
            path_b.with_extension("tmp"),
            "the regression needs targets whose naive temp paths collide"
        );

        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                for _ in 0..20 {
                    write_snapshot(&path_a, &log_a, &qfg_a).unwrap();
                }
            });
            let b = scope.spawn(|| {
                for _ in 0..20 {
                    write_snapshot(&path_b, &log_b, &qfg_b).unwrap();
                }
            });
            a.join().unwrap();
            b.join().unwrap();
        });

        // Each target holds its own writer's state, not the sibling's.
        let snap_a = read_snapshot(&path_a, Obscurity::NoConstOp).unwrap();
        let snap_b = read_snapshot(&path_b, Obscurity::NoConstOp).unwrap();
        assert_eq!(snap_a.log, log_a);
        assert_eq!(snap_a.qfg, qfg_a);
        assert_eq!(snap_b.log, log_b);
        assert_eq!(snap_b.qfg, qfg_b);
        // No temp litter survives a successful save.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watermark_round_trips_and_defaults_to_zero() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("watermark");
        write_snapshot_with_watermark(&path, &log, &qfg, Some(42)).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp watermark=42\n"));
        let (snapshot, watermark) =
            read_snapshot_with_watermark(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(watermark, 42);
        assert_eq!(snapshot.log, log);
        // The plain reader still accepts a watermarked snapshot.
        assert_eq!(read_snapshot(&path, Obscurity::NoConstOp).unwrap().qfg, qfg);
        // And a plain snapshot reads back with watermark 0.
        write_snapshot(&path, &log, &qfg).unwrap();
        let (_, watermark) = read_snapshot_with_watermark(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(watermark, 0);
        // A mangled watermark token is corruption, not silently 0.
        fs::write(
            &path,
            "TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp watermark=banana\n{}",
        )
        .unwrap();
        assert!(matches!(
            read_snapshot_with_watermark(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn written_snapshots_carry_the_v2_header() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("v2header");
        write_snapshot(&path, &log, &qfg).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp\n"));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_snapshots_migrate_to_identical_state() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("v1migrate");
        write_snapshot_v1(&path, &log, &qfg).unwrap();
        let migrated = read_snapshot(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(migrated.log, log);
        assert_eq!(migrated.qfg, qfg, "migrated counts must be identical");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_snapshots_respect_the_obscurity_gate() {
        let (log, qfg) = sample_state(Obscurity::NoConst);
        let path = temp_path("v1gate");
        write_snapshot_v1(&path, &log, &qfg).unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::ObscurityMismatch { .. })
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn obscurity_mismatch_is_rejected() {
        let (log, qfg) = sample_state(Obscurity::NoConst);
        let path = temp_path("mismatch");
        write_snapshot(&path, &log, &qfg).unwrap();
        match read_snapshot(&path, Obscurity::NoConstOp) {
            Err(SnapshotError::ObscurityMismatch { expected, found }) => {
                assert_eq!(expected, Obscurity::NoConstOp);
                assert_eq!(found, Obscurity::NoConst);
            }
            other => panic!("expected ObscurityMismatch, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_bad_version_are_rejected() {
        let path = temp_path("magic");
        fs::write(&path, "NOT-A-SNAPSHOT v2 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::BadMagic)
        ));
        fs::write(&path, "TEMPLAR-SNAPSHOT v99 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
        fs::write(&path, "TEMPLAR-SNAPSHOT v0 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::UnsupportedVersion { found: 0, .. })
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let path = temp_path("corrupt");
        fs::write(
            &path,
            "TEMPLAR-SNAPSHOT v2 obscurity=NoConstOp\n{this is not json",
        )
        .unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let path = temp_path("corrupt-header");
        // Version present but obscurity mangled.
        fs::write(&path, "TEMPLAR-SNAPSHOT v2 obscurity=Sideways\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        // Obscurity field missing entirely.
        fs::write(&path, "TEMPLAR-SNAPSHOT v2\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_csr_is_rejected_as_corrupt() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("truncated-csr");
        write_snapshot(&path, &log, &qfg).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        // Drop one entry from the counts column: offsets now promise more
        // edges than the columns hold.
        let truncated = {
            let marker = "\"counts\":[";
            let start = text.find(marker).expect("counts column present") + marker.len();
            let end = text[start..].find(']').unwrap() + start;
            let column = &text[start..end];
            let shorter = match column.rfind(',') {
                Some(last_comma) => &column[..last_comma],
                None => "",
            };
            format!("{}{}{}", &text[..start], shorter, &text[end..])
        };
        fs::write(&path, truncated).unwrap();
        match read_snapshot(&path, Obscurity::NoConstOp) {
            Err(SnapshotError::Corrupt(detail)) => {
                assert!(detail.contains("truncated CSR"), "detail was: {detail}")
            }
            other => panic!("expected Corrupt for a truncated CSR, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    /// The end-to-end migration proof: a service state persisted with the
    /// old v1 writer restores through the v2 loader and serves *identical*
    /// translations (queries and scores) to the same state persisted as v2.
    #[test]
    fn v1_snapshot_restores_and_serves_identically_under_v2() {
        use crate::config::ServiceConfig;
        use crate::server::TemplarService;
        use nlidb::Nlq;
        use relational::{DataType, Database, Schema};
        use sqlparse::BinOp;
        use std::sync::Arc;
        use templar_core::{Keyword, KeywordMetadata, TemplarConfig};

        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", relational::DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        let db = Arc::new(db);

        let (log, skipped) = QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 1995",
            "SELECT j.name FROM journal j",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
        ]);
        assert_eq!(skipped, 0);
        let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let v1_path = temp_path("serve-v1");
        let v2_path = temp_path("serve-v2");
        write_snapshot_v1(&v1_path, &log, &qfg).unwrap();
        write_snapshot(&v2_path, &log, &qfg).unwrap();

        let nlq = Nlq::new(
            "Return the papers after 2000",
            vec![
                (Keyword::new("papers"), KeywordMetadata::select()),
                (
                    Keyword::new("after 2000"),
                    KeywordMetadata::filter_with_op(BinOp::Gt),
                ),
            ],
            vec![],
        );
        let from_v1 = TemplarService::spawn_from_snapshot(
            Arc::clone(&db),
            &v1_path,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .expect("v1 snapshots must keep loading via the migration path");
        let from_v2 = TemplarService::spawn_from_snapshot(
            db,
            &v2_path,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap();
        let a = from_v1.translate(&nlq).unwrap();
        let b = from_v2.translate(&nlq).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query.to_string(), y.query.to_string());
            assert!((x.score - y.score).abs() < 1e-12);
        }
        // Re-saving the migrated state produces a v2 snapshot.
        from_v1.save_snapshot(&v1_path).unwrap();
        let text = fs::read_to_string(&v1_path).unwrap();
        assert!(text.starts_with("TEMPLAR-SNAPSHOT v2 "));
        fs::remove_file(&v1_path).ok();
        fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn v2_snapshots_are_smaller_than_v1() {
        // The columnar body writes each fragment once; the v1 pair encoding
        // repeated fragments once per incident edge.
        let mut sql: Vec<String> = Vec::new();
        for year in 0..40 {
            sql.push(format!(
                "SELECT p.title, j.name FROM publication p, journal j \
                 WHERE p.jid = j.jid AND p.year > {year}"
            ));
        }
        let (log, _) = QueryLog::from_sql(sql.iter().map(String::as_str));
        let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let v1 = temp_path("size-v1");
        let v2 = temp_path("size-v2");
        write_snapshot_v1(&v1, &log, &qfg).unwrap();
        write_snapshot(&v2, &log, &qfg).unwrap();
        let v1_len = fs::metadata(&v1).unwrap().len();
        let v2_len = fs::metadata(&v2).unwrap().len();
        assert!(
            v2_len < v1_len,
            "v2 snapshot ({v2_len} B) should be smaller than v1 ({v1_len} B)"
        );
        fs::remove_file(&v1).ok();
        fs::remove_file(&v2).ok();
    }
}
