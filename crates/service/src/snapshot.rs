//! Versioned on-disk snapshots of the serving state.
//!
//! A snapshot captures the live [`QueryLog`] *and* the
//! [`QueryFragmentGraph`] built from it, so a restarted service resumes
//! serving log-informed translations immediately — no re-parse and no QFG
//! rebuild of a potentially multi-million-entry log.
//!
//! # Format (version 1)
//!
//! ```text
//! TEMPLAR-SNAPSHOT v1 obscurity=NoConstOp\n   ← header line, ASCII
//! {"log": …, "qfg": …}                        ← body, one JSON document
//! ```
//!
//! The header carries everything needed to *reject* a snapshot before
//! parsing the (potentially large) body:
//!
//! * the magic string guards against feeding an arbitrary file in,
//! * the version gates format evolution,
//! * the obscurity level must match the configuration the service runs at —
//!   QFG counts produced at one obscurity level are meaningless at another,
//!   so a mismatch is a hard error rather than a silent accuracy bug.
//!
//! Writes go through a sibling temp file and an atomic rename, so a crash
//! mid-write can never leave a truncated snapshot at the target path.

use crate::error::SnapshotError;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;
use templar_core::{Obscurity, QueryFragmentGraph, QueryLog};

/// First token of every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "TEMPLAR-SNAPSHOT";
/// The format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The deserialized content of a snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The query log at capture time.
    pub log: QueryLog,
    /// The Query Fragment Graph over that log.
    pub qfg: QueryFragmentGraph,
}

/// Serialize the serving state to `path` (atomic replace).
pub fn write_snapshot(
    path: &Path,
    log: &QueryLog,
    qfg: &QueryFragmentGraph,
) -> Result<(), SnapshotError> {
    let header = format!(
        "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} obscurity={}\n",
        qfg.obscurity().name()
    );
    // Serialize from the borrows directly (same field layout as
    // [`Snapshot`]) — no intermediate clone of a potentially large state.
    let body_value = serde::Value::Map(vec![
        ("log".to_string(), serde::Serialize::to_value(log)),
        ("qfg".to_string(), serde::Serialize::to_value(qfg)),
    ]);
    let body =
        serde_json::to_string(&body_value).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, header + &body)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and validate a snapshot, rejecting wrong magic, unsupported versions
/// and — crucially — snapshots captured at a different obscurity level than
/// `expected`.
pub fn read_snapshot(path: &Path, expected: Obscurity) -> Result<Snapshot, SnapshotError> {
    let text = fs::read_to_string(path)?;
    let (header, body) = text.split_once('\n').ok_or(SnapshotError::BadMagic)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(SNAPSHOT_MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or(SnapshotError::BadMagic)?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let obscurity = parts
        .next()
        .and_then(|v| v.strip_prefix("obscurity="))
        .and_then(parse_obscurity)
        .ok_or_else(|| SnapshotError::Corrupt("missing obscurity in header".to_string()))?;
    if obscurity != expected {
        return Err(SnapshotError::ObscurityMismatch {
            expected,
            found: obscurity,
        });
    }
    let snapshot: Snapshot =
        serde_json::from_str(body).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    if snapshot.qfg.obscurity() != obscurity {
        return Err(SnapshotError::Corrupt(
            "body obscurity disagrees with header".to_string(),
        ));
    }
    Ok(snapshot)
}

fn parse_obscurity(name: &str) -> Option<Obscurity> {
    Obscurity::ALL.into_iter().find(|o| o.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("templar-snap-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_state(obscurity: Obscurity) -> (QueryLog, QueryFragmentGraph) {
        let (log, skipped) = QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 2000",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
            "SELECT j.name FROM journal j",
        ]);
        assert_eq!(skipped, 0);
        let qfg = QueryFragmentGraph::build(&log, obscurity);
        (log, qfg)
    }

    #[test]
    fn round_trip_preserves_log_and_counts() {
        let (log, qfg) = sample_state(Obscurity::NoConstOp);
        let path = temp_path("roundtrip");
        write_snapshot(&path, &log, &qfg).unwrap();
        let snapshot = read_snapshot(&path, Obscurity::NoConstOp).unwrap();
        assert_eq!(snapshot.log, log);
        assert_eq!(snapshot.qfg, qfg);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn obscurity_mismatch_is_rejected() {
        let (log, qfg) = sample_state(Obscurity::NoConst);
        let path = temp_path("mismatch");
        write_snapshot(&path, &log, &qfg).unwrap();
        match read_snapshot(&path, Obscurity::NoConstOp) {
            Err(SnapshotError::ObscurityMismatch { expected, found }) => {
                assert_eq!(expected, Obscurity::NoConstOp);
                assert_eq!(found, Obscurity::NoConst);
            }
            other => panic!("expected ObscurityMismatch, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_bad_version_are_rejected() {
        let path = temp_path("magic");
        fs::write(&path, "NOT-A-SNAPSHOT v1 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::BadMagic)
        ));
        fs::write(&path, "TEMPLAR-SNAPSHOT v99 obscurity=Full\n{}").unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::Full),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let path = temp_path("corrupt");
        fs::write(
            &path,
            "TEMPLAR-SNAPSHOT v1 obscurity=NoConstOp\n{this is not json",
        )
        .unwrap();
        assert!(matches!(
            read_snapshot(&path, Obscurity::NoConstOp),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }
}
