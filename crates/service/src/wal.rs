//! The write-ahead ingest journal.
//!
//! Every log entry a durable service accepts is appended here *before* it is
//! applied to the Query Fragment Graph, so a `kill -9` between snapshot
//! publishes loses at most the un-fsynced tail of the journal — never the
//! evidence the system already promised to learn from.
//!
//! # On-disk layout
//!
//! The journal is a directory of append-only **segment files**:
//!
//! ```text
//! wal/
//!   wal-00000000000000000001.seg    ← records with seq 1, 2, …
//!   wal-00000000000000004097.seg    ← records from seq 4097 on
//! ```
//!
//! A segment's filename carries the sequence number of its first record;
//! records inside a segment are consecutive, so `(filename, ordinal)`
//! determines every record's sequence number without storing it per record.
//! Segment boundaries therefore also prove contiguity: segment `i` must end
//! exactly where segment `i+1` begins, and a gap surfaces as
//! [`WalError::Corrupt`] instead of silently skipped evidence.
//!
//! Each record is CRC-framed:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes of raw SQL]
//! ```
//!
//! # Durability model
//!
//! Appends are buffered by the OS; [`WalWriter::maybe_sync`] issues an
//! `fsync` once `fsync_every` records are dirty or `fsync_interval` has
//! passed with any dirty record — the classic group-commit trade between
//! ingest throughput and the size of the tail a power loss can eat.
//! [`WalWriter::sync`] forces the flush (used at shutdown and before
//! checkpoints that must cover the tail).  Creating a segment also fsyncs
//! the journal directory so the file's *name* survives the crash, not just
//! its bytes.
//!
//! # Recovery
//!
//! [`replay`] walks the segments above a snapshot's covered sequence number
//! (the *watermark*) and returns the surviving entries in order.  A torn
//! final record — a partial frame or a CRC mismatch at the tail of the
//! *last* segment, exactly what an interrupted `write(2)` leaves behind — is
//! **truncated, not fatal**: the file is cut back to the last whole record
//! and the writer resumes after it.  The same damage in a non-final segment
//! means bytes the journal once promised are gone, which *is* fatal
//! ([`WalError::Corrupt`]).
//!
//! [`gc_segments`] deletes segments wholly covered by the watermark; the
//! active (final) segment is never deleted.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::config::WalConfig;
use crate::error::WalError;
use crate::storage::{FsStorage, Storage, StorageFile};

/// Filename prefix of every segment file.
pub const SEGMENT_PREFIX: &str = "wal-";
/// Filename suffix of every segment file.
pub const SEGMENT_SUFFIX: &str = ".seg";
/// Bytes of framing per record: `len: u32` + `crc32: u32`.
const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3, the zlib polynomial), bitwise; the journal frames are
/// small and append-time cost is dominated by the write syscall, so a table
/// is not worth vendoring.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The path of the segment whose first record is `first_seq`.
fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}"))
}

/// Parse a segment filename back to its first sequence number.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// The segment files under `dir`, sorted by first sequence number.
fn list_segments(storage: &dyn Storage, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for name in storage.list_dir(dir)? {
        if let Some(first) = parse_segment_name(&name) {
            segments.push((first, dir.join(name)));
        }
    }
    segments.sort_unstable_by_key(|(first, _)| *first);
    Ok(segments)
}

/// The append half of the journal.  Single-writer: the service's ingestion
/// worker owns it (checkpoints lock it only to force the tail down).
///
/// Frames are staged in an in-process buffer and handed to the OS at sync
/// time.  This keeps [`WalWriter::append`] infallible — sequence numbers are
/// assigned unconditionally and never develop gaps — and guarantees a failed
/// OS write can only damage the *tail* of the final segment (which replay
/// truncates), never leave a torn frame below bytes appended later: on a
/// short write the segment is cut back to the last known-good frame boundary
/// and the whole buffer is retried at the next sync.
#[derive(Debug)]
pub struct WalWriter {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    file: Box<dyn StorageFile>,
    config: WalConfig,
    /// Sequence number the next append will receive.
    next_seq: u64,
    /// Records assigned to the currently open segment (written or staged).
    segment_records: u64,
    /// Frames accepted but not yet successfully handed to the OS.
    buffer: Vec<u8>,
    /// Records since the last successful fsync (staged + written).
    dirty_records: usize,
    /// Byte length of the current segment known to be fully written.
    written_len: u64,
    last_sync: Instant,
    /// A segment rotation created the current file but failed to fsync the
    /// journal directory: the segment's *name* is not yet durable, so no
    /// sync may be acknowledged until the directory fsync succeeds.
    pending_dir_sync: bool,
    /// Filesystem failures absorbed since the last [`WalWriter::take_io_errors`].
    io_errors: u64,
    /// A sync failure episode is in progress: repeated failures of the same
    /// episode count as ONE `io_errors` increment (the counter measures
    /// distinct failures, not retry attempts); a successful sync ends it.
    sync_failing: bool,
    /// `errno` of the failure that opened the current (or latest) episode,
    /// kept until [`WalWriter::take_last_errno`] drains it — the signal
    /// that lets an operator tell `ENOSPC` from `EIO`.
    last_errno: Option<i32>,
}

impl WalWriter {
    /// Open the journal for appending, starting a fresh segment whose first
    /// record will be `next_seq`.  Called after [`replay`] decided
    /// `next_seq`, so an existing file at this name can only be an empty
    /// leftover segment from a previous session that appended nothing.
    pub fn create(dir: &Path, next_seq: u64, config: WalConfig) -> io::Result<Self> {
        Self::create_with(FsStorage::shared(), dir, next_seq, config)
    }

    /// [`WalWriter::create`] over an explicit [`Storage`] (fault injection
    /// in tests; [`FsStorage`] in production).
    pub fn create_with(
        storage: Arc<dyn Storage>,
        dir: &Path,
        next_seq: u64,
        config: WalConfig,
    ) -> io::Result<Self> {
        storage.create_dir_all(dir)?;
        let path = segment_path(dir, next_seq);
        let file = storage.create(&path)?;
        storage.sync_dir(dir)?;
        Ok(WalWriter {
            storage,
            dir: dir.to_path_buf(),
            file,
            config,
            next_seq,
            segment_records: 0,
            buffer: Vec::new(),
            dirty_records: 0,
            written_len: 0,
            last_sync: Instant::now(),
            pending_dir_sync: false,
            io_errors: 0,
            sync_failing: false,
            last_errno: None,
        })
    }

    /// Append one raw SQL entry, returning the sequence number it was
    /// journaled under.  Staged in memory: durability follows at the next
    /// [`WalWriter::maybe_sync`] / [`WalWriter::sync`].  A rotation that
    /// fails leaves the record on the current (oversized) segment and is
    /// retried later — the segment cap is a soft limit.
    ///
    /// Callers must not append empty entries: a zero-length frame is
    /// indistinguishable from a zero-filled crash artifact, so [`replay`]
    /// treats it as damage (the ingestion worker filters empties before
    /// they reach the journal).
    pub fn append(&mut self, sql: &str) -> u64 {
        debug_assert!(
            !sql.is_empty(),
            "empty entries must be filtered before they reach the journal"
        );
        if self.segment_records >= self.config.segment_max_records {
            if let Err(e) = self.rotate() {
                self.note_io_failure(&e);
            }
        }
        let payload = sql.as_bytes();
        self.buffer.reserve(FRAME_HEADER + payload.len());
        self.buffer
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buffer.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buffer.extend_from_slice(payload);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.segment_records += 1;
        self.dirty_records += 1;
        seq
    }

    /// Hand the staged frames to the OS.  On failure the segment is cut
    /// back to the last known-good frame boundary (a short write may have
    /// landed part of a frame) and the buffer is kept for retry.
    fn flush(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        if let Err(e) = self.file.write_all(&self.buffer) {
            let _ = self.file.set_len(self.written_len);
            let _ = self.file.seek_start(self.written_len);
            return Err(e);
        }
        self.written_len += self.buffer.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Fsync if the batching policy says the dirty tail is due: at least
    /// `fsync_every` dirty records, or any dirty record older than
    /// `fsync_interval`.  Returns whether an fsync was issued.
    pub fn maybe_sync(&mut self) -> io::Result<bool> {
        if self.pending_dir_sync {
            // A rotation's directory fsync is outstanding; durability must
            // not be acknowledged past it, policy or no policy.
            return self.sync();
        }
        if self.dirty_records == 0 {
            return Ok(false);
        }
        if self.dirty_records >= self.config.fsync_every
            || self.last_sync.elapsed() >= self.config.fsync_interval
        {
            return self.sync();
        }
        Ok(false)
    }

    /// Force the dirty tail down: retry any outstanding directory fsync,
    /// flush staged frames and fsync.  Returns whether an fsync was issued
    /// (false when nothing was dirty).
    ///
    /// Failure accounting is per *episode*, not per attempt: the first
    /// failure after a success increments the absorbed-failure counter
    /// (see [`WalWriter::take_io_errors`]) and records its `errno`; the
    /// retries a wedged journal provokes do not inflate the count, and the
    /// next success closes the episode.
    pub fn sync(&mut self) -> io::Result<bool> {
        match self.sync_inner() {
            Ok(issued) => {
                self.sync_failing = false;
                Ok(issued)
            }
            Err(e) => {
                self.note_io_failure(&e);
                Err(e)
            }
        }
    }

    fn sync_inner(&mut self) -> io::Result<bool> {
        if self.pending_dir_sync {
            // The current segment's NAME is not durable until this
            // succeeds; acknowledging a data sync first would let a
            // checkpoint GC older segments while the whole new segment
            // could still vanish with the lost directory entry.
            self.storage.sync_dir(&self.dir)?;
            self.pending_dir_sync = false;
        }
        if self.dirty_records == 0 {
            return Ok(false);
        }
        self.flush()?;
        self.file.sync_data()?;
        self.dirty_records = 0;
        self.last_sync = Instant::now();
        Ok(true)
    }

    /// Open a failure episode (idempotent within one): count it once and
    /// remember the `errno` that started it.
    fn note_io_failure(&mut self, e: &io::Error) {
        if !self.sync_failing {
            self.sync_failing = true;
            self.io_errors += 1;
            if let Some(errno) = e.raw_os_error() {
                self.last_errno = Some(errno);
            }
        }
    }

    /// Seal the current segment and start the next one.  The sealed segment
    /// is flushed and fsynced first so replay's "torn tails only happen in
    /// the final segment" invariant holds on disk, not just in this process.
    fn rotate(&mut self) -> io::Result<()> {
        self.flush()?;
        self.file.sync_data()?;
        self.dirty_records = 0;
        self.last_sync = Instant::now();
        let path = segment_path(&self.dir, self.next_seq);
        self.file = self.storage.create(&path)?;
        self.segment_records = 0;
        self.written_len = 0;
        if let Err(e) = self.storage.sync_dir(&self.dir) {
            // The new segment's bytes will reach disk via sync_data, but
            // its directory entry is not durable yet — remember, and retry
            // before any future sync is acknowledged.
            self.pending_dir_sync = true;
            return Err(e);
        }
        self.sync_failing = false;
        Ok(())
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records not yet covered by an fsync.
    pub fn dirty(&self) -> usize {
        self.dirty_records
    }

    /// Bytes staged in memory awaiting a successful write — nonzero only
    /// while writes are failing (a healthy sync drains the buffer).  The
    /// worker uses this to stop draining the queue when the journal is
    /// wedged, converting a would-be unbounded buffer into queue
    /// backpressure.
    pub fn staged_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Drain the count of filesystem failures absorbed since the last call
    /// (for the service's `wal_io_errors` metric).  Counts distinct failure
    /// *episodes*: a permanently failing fsync that is retried N times
    /// contributes 1, not N.
    pub fn take_io_errors(&mut self) -> u64 {
        std::mem::take(&mut self.io_errors)
    }

    /// Drain the `errno` that opened the most recent failure episode (for
    /// the service's `wal_last_errno` metric — `ENOSPC` reads differently
    /// from `EIO` on an operator's dashboard).
    pub fn take_last_errno(&mut self) -> Option<i32> {
        self.last_errno.take()
    }

    /// Whether the writer is inside an unresolved failure episode.
    pub fn is_failing(&self) -> bool {
        self.sync_failing
    }
}

/// One decoded journal record: its sequence number and raw SQL payload.
pub type ReplayedEntry = (u64, String);

/// The outcome of replaying the journal tail above a watermark.
#[derive(Debug)]
pub struct WalReplay {
    /// The surviving entries with sequence numbers strictly above the
    /// watermark, in append order.
    pub entries: Vec<ReplayedEntry>,
    /// The sequence number the next append must receive (one past the last
    /// record on disk, whether or not it was above the watermark).
    pub next_seq: u64,
    /// Bytes cut off the final segment's torn tail (0 on a clean journal).
    pub truncated_bytes: u64,
}

/// Summary statistics of a batched replay ([`replay_batched`]).
#[derive(Debug)]
pub struct WalReplayStats {
    /// The sequence number the next append must receive (one past the last
    /// record on disk, whether or not it was above the watermark).
    pub next_seq: u64,
    /// Bytes cut off the final segment's torn tail (0 on a clean journal).
    pub truncated_bytes: u64,
    /// Entries above the watermark handed to the sink, across all batches.
    pub replayed: u64,
    /// The largest decoded batch handed to the sink, in accounted bytes
    /// (payload plus per-entry bookkeeping).  At most
    /// `max(budget, largest single entry)` — an entry bigger than the whole
    /// budget forms a batch of its own rather than being dropped.
    pub peak_batch_bytes: u64,
    /// How many times the sink was invoked.
    pub batches: u64,
}

/// Accounted in-memory cost of one decoded entry: the SQL payload plus the
/// tuple bookkeeping it rides in.
const ENTRY_OVERHEAD: usize = std::mem::size_of::<(u64, String)>();

/// Replay the journal: read every segment, verify contiguity and framing,
/// truncate a torn final record, and return the entries above `watermark`.
///
/// An empty or missing journal directory replays to nothing with
/// `next_seq = watermark + 1` — a fresh service.
///
/// This eager form materializes the whole tail; recovery paths that must
/// bound peak memory use [`replay_batched`] directly.
pub fn replay(dir: &Path, watermark: u64) -> Result<WalReplay, WalError> {
    let mut entries = Vec::new();
    let stats = replay_batched(dir, watermark, usize::MAX, &mut |batch| {
        entries.extend_from_slice(batch)
    })?;
    Ok(WalReplay {
        entries,
        next_seq: stats.next_seq,
        truncated_bytes: stats.truncated_bytes,
    })
}

/// [`replay_batched`] over the production filesystem.
pub fn replay_batched(
    dir: &Path,
    watermark: u64,
    batch_budget_bytes: usize,
    sink: &mut dyn FnMut(&[ReplayedEntry]),
) -> Result<WalReplayStats, WalError> {
    replay_batched_with(&FsStorage, dir, watermark, batch_budget_bytes, sink)
}

/// Replay the journal tail above `watermark` in bounded-memory batches.
///
/// Decoded entries accumulate until admitting the next one would push the
/// batch past `batch_budget_bytes`; the batch is then handed to `sink` and
/// the buffer reused.  A single entry larger than the whole budget still
/// flows through as a batch of one, so the bound on decoded-entry memory is
/// `max(batch_budget_bytes, largest entry)` — never the size of the tail.
/// Segment contiguity checks, benign-gap tolerance, and torn-tail physical
/// truncation are identical to [`replay`] (which is a collect-all wrapper
/// over this function).
pub fn replay_batched_with(
    storage: &dyn Storage,
    dir: &Path,
    watermark: u64,
    batch_budget_bytes: usize,
    sink: &mut dyn FnMut(&[ReplayedEntry]),
) -> Result<WalReplayStats, WalError> {
    let segments = match list_segments(storage, dir) {
        Ok(segments) => segments,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(WalError::Io(e)),
    };
    let mut batch: Vec<(u64, String)> = Vec::new();
    let mut batch_bytes = 0usize;
    let mut replayed = 0u64;
    let mut peak_batch_bytes = 0u64;
    let mut batches = 0u64;
    let mut next_seq = watermark + 1;
    let mut truncated_bytes = 0u64;
    for (index, (first_seq, path)) in segments.iter().enumerate() {
        let is_last = index + 1 == segments.len();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if index > 0 && *first_seq != next_seq {
            // Missing records are [next_seq, first_seq). A gap wholly at or
            // below the watermark is benign — the snapshot already covers
            // those records (e.g. a previous recovery truncated a tail that
            // a later checkpoint had absorbed).  A gap reaching above the
            // watermark, or overlapping segments, is lost/duplicated
            // evidence.
            let benign_gap = *first_seq > next_seq && *first_seq <= watermark + 1;
            if !benign_gap {
                return Err(WalError::Corrupt {
                    segment: name,
                    detail: format!(
                        "segment starts at seq {first_seq} but the previous segment ended at \
                         {}: the journal is not contiguous",
                        next_seq - 1
                    ),
                });
            }
            next_seq = *first_seq;
        }
        if index == 0 {
            if *first_seq > next_seq {
                return Err(WalError::Corrupt {
                    segment: name,
                    detail: format!(
                        "oldest segment starts at seq {first_seq} but the snapshot covers \
                         only up to {watermark}: covered segments were lost"
                    ),
                });
            }
            next_seq = *first_seq;
        }
        let bytes = storage.read(path).map_err(WalError::Io)?;
        let (records, valid_len) = parse_segment(&bytes, &name, is_last)?;
        if valid_len < bytes.len() as u64 {
            // Torn tail on the final segment: cut the file back to the last
            // whole record so future replays (and appends to a later
            // segment) never see the partial frame again.
            truncated_bytes = bytes.len() as u64 - valid_len;
            let mut file = storage.open_write(path).map_err(WalError::Io)?;
            file.set_len(valid_len).map_err(WalError::Io)?;
            file.sync_all().map_err(WalError::Io)?;
        }
        for sql in records {
            let seq = next_seq;
            next_seq += 1;
            if seq > watermark {
                let cost = sql.len() + ENTRY_OVERHEAD;
                if !batch.is_empty() && batch_bytes.saturating_add(cost) > batch_budget_bytes {
                    peak_batch_bytes = peak_batch_bytes.max(batch_bytes as u64);
                    batches += 1;
                    sink(&batch);
                    batch.clear();
                    batch_bytes = 0;
                }
                batch_bytes += cost;
                replayed += 1;
                batch.push((seq, sql));
            }
        }
    }
    if !batch.is_empty() {
        peak_batch_bytes = peak_batch_bytes.max(batch_bytes as u64);
        batches += 1;
        sink(&batch);
    }
    Ok(WalReplayStats {
        next_seq: next_seq.max(watermark + 1),
        truncated_bytes,
        replayed,
        peak_batch_bytes,
        batches,
    })
}

/// Walk one segment's frames.  Returns the decoded records and the byte
/// length of the valid prefix.
///
/// Damage classification distinguishes the two physical failure shapes:
///
/// * **Torn tail** — the remainder is what an interrupted append leaves:
///   a frame cut off by end-of-file, a zero-filled run (delayed-allocation
///   filesystems journal the size before the data, so a crash extends the
///   file with zeros), or a garbled *final* frame.  Only allowed in the
///   final segment; reported through a short `valid_len`.
/// * **Corruption** — a bad frame *with real bytes after it* (media damage
///   under records the journal already acknowledged), a zero-length frame
///   claiming validity (8 zero bytes would otherwise decode as an "empty
///   record", letting a zeroed tail masquerade as thousands of phantom
///   entries — `crc32("") == 0`), or any damage in a non-final segment.
///   Always fatal: truncating here would destroy durable evidence.
fn parse_segment(bytes: &[u8], name: &str, is_last: bool) -> Result<(Vec<String>, u64), WalError> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        // `tail_damage` = the invalid region runs to end-of-file (an
        // interrupted append or a zeroed extension); damage *under* later
        // bytes can only be media corruption.
        let torn = |tail_damage: bool, detail: String| -> Result<u64, WalError> {
            if is_last && tail_damage {
                // The valid prefix is everything before this frame.
                Ok(at as u64)
            } else {
                Err(WalError::Corrupt {
                    segment: name.to_string(),
                    detail,
                })
            }
        };
        if bytes.len() - at < FRAME_HEADER {
            let valid = torn(true, format!("truncated frame header at byte {at}"))?;
            return Ok((records, valid));
        }
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let stored_crc =
            u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        let body_start = at + FRAME_HEADER;
        if len == 0 {
            // Never written by `append` (the service filters empty entries);
            // a zeroed tail is torn, anything else pretending to be an
            // empty record is corruption.
            let zeroed_tail = bytes[at..].iter().all(|&b| b == 0);
            let valid = torn(zeroed_tail, format!("zero-length frame at byte {at}"))?;
            return Ok((records, valid));
        }
        if bytes.len() - body_start < len {
            let valid = torn(
                true,
                format!(
                    "record at byte {at} promises {len} payload bytes, {} remain",
                    bytes.len() - body_start
                ),
            )?;
            return Ok((records, valid));
        }
        let body_end = body_start + len;
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != stored_crc {
            // A torn write garbles the *last* thing in the file; a CRC
            // mismatch with real bytes after the frame is damage under
            // acknowledged records.
            let tail_damage = body_end == bytes.len() || bytes[at..].iter().all(|&b| b == 0);
            let valid = torn(tail_damage, format!("CRC mismatch in record at byte {at}"))?;
            return Ok((records, valid));
        }
        let sql = std::str::from_utf8(payload)
            .map_err(|e| WalError::Corrupt {
                segment: name.to_string(),
                detail: format!("record at byte {at} is not UTF-8: {e}"),
            })?
            .to_string();
        records.push(sql);
        at = body_end;
    }
    Ok((records, bytes.len() as u64))
}

/// Delete segments wholly covered by `watermark` — a segment is deletable
/// exactly when the *next* segment starts at or below `watermark + 1`, which
/// proves every record in it has `seq <= watermark`.  The final segment is
/// never deleted (its end is unknown and the writer owns it).  Returns the
/// number of segments removed.
pub fn gc_segments(dir: &Path, watermark: u64) -> io::Result<usize> {
    gc_segments_with(&FsStorage, dir, watermark)
}

/// [`gc_segments`] over an explicit [`Storage`].
pub fn gc_segments_with(storage: &dyn Storage, dir: &Path, watermark: u64) -> io::Result<usize> {
    let segments = match list_segments(storage, dir) {
        Ok(segments) => segments,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0;
    for pair in segments.windows(2) {
        let (_, ref path) = pair[0];
        let (next_first, _) = pair[1];
        if next_first <= watermark + 1 {
            storage.remove_file(path)?;
            removed += 1;
        }
    }
    if removed > 0 {
        storage.sync_dir(dir)?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::{self, OpenOptions};
    use std::time::Duration;

    fn temp_wal_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("templar-wal-test-{}-{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn fast_config() -> WalConfig {
        WalConfig {
            fsync_every: 2,
            fsync_interval: Duration::from_millis(5),
            segment_max_records: 4,
            max_staged_bytes: 8 * 1024 * 1024,
            ..WalConfig::default()
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = temp_wal_dir("roundtrip");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        for (i, sql) in ["SELECT a FROM t", "SELECT b FROM u", "SELECT c FROM v"]
            .iter()
            .enumerate()
        {
            assert_eq!(wal.append(sql), i as u64 + 1);
        }
        wal.sync().unwrap();
        let replayed = replay(&dir, 0).unwrap();
        assert_eq!(replayed.next_seq, 4);
        assert_eq!(replayed.truncated_bytes, 0);
        assert_eq!(
            replayed.entries,
            vec![
                (1, "SELECT a FROM t".to_string()),
                (2, "SELECT b FROM u".to_string()),
                (3, "SELECT c FROM v".to_string()),
            ]
        );
        // The watermark hides the covered prefix but next_seq still reflects
        // the whole journal.
        let tail = replay(&dir, 2).unwrap();
        assert_eq!(tail.entries, vec![(3, "SELECT c FROM v".to_string())]);
        assert_eq!(tail.next_seq, 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_batches_and_forces() {
        let dir = temp_wal_dir("fsync");
        let mut wal = WalWriter::create(
            &dir,
            1,
            WalConfig {
                fsync_every: 3,
                fsync_interval: Duration::from_secs(3600),
                segment_max_records: 1024,
                max_staged_bytes: 8 * 1024 * 1024,
                ..WalConfig::default()
            },
        )
        .unwrap();
        wal.append("SELECT a FROM t");
        assert!(!wal.maybe_sync().unwrap(), "1 dirty < fsync_every");
        assert_eq!(wal.dirty(), 1);
        wal.append("SELECT b FROM t");
        wal.append("SELECT c FROM t");
        assert!(wal.maybe_sync().unwrap(), "3 dirty hits fsync_every");
        assert_eq!(wal.dirty(), 0);
        wal.append("SELECT d FROM t");
        assert!(wal.sync().unwrap(), "sync forces the flush");
        assert!(!wal.sync().unwrap(), "nothing dirty, no fsync");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_and_stay_contiguous() {
        let dir = temp_wal_dir("rotate");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        for i in 0..10 {
            wal.append(&format!("SELECT c{i} FROM t"));
        }
        wal.sync().unwrap();
        let segments = list_segments(&FsStorage, &dir).unwrap();
        assert_eq!(
            segments.iter().map(|(first, _)| *first).collect::<Vec<_>>(),
            vec![1, 5, 9],
            "4-record segments must rotate at 5 and 9"
        );
        let replayed = replay(&dir, 0).unwrap();
        assert_eq!(replayed.entries.len(), 10);
        assert_eq!(replayed.next_seq, 11);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_record_is_truncated_not_fatal() {
        let dir = temp_wal_dir("torn");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        wal.append("SELECT a FROM t");
        wal.append("SELECT b FROM t");
        wal.sync().unwrap();
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();
        // Chop mid-way through the second record.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replayed = replay(&dir, 0).unwrap();
        assert_eq!(replayed.entries, vec![(1, "SELECT a FROM t".to_string())]);
        assert_eq!(replayed.next_seq, 2);
        assert!(replayed.truncated_bytes > 0);
        // The torn bytes are physically gone: a second replay is clean.
        let again = replay(&dir, 0).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.entries.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    /// A flipped byte *under* later records is media damage, not a torn
    /// append: replay must refuse rather than silently truncate away
    /// records the journal already acknowledged as durable.
    #[test]
    fn crc_mismatch_below_valid_records_is_fatal_even_in_the_final_segment() {
        let dir = temp_wal_dir("midfile-crc");
        let mut wal = WalWriter::create(
            &dir,
            1,
            WalConfig {
                fsync_every: 1,
                fsync_interval: Duration::from_millis(5),
                segment_max_records: 1024, // keep everything in one segment
                max_staged_bytes: 8 * 1024 * 1024,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for i in 0..5 {
            wal.append(&format!("SELECT c{i} FROM t"));
        }
        wal.sync().unwrap();
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the FIRST record; records 2..=5 follow.
        bytes[10] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        match replay(&dir, 0) {
            Err(WalError::Corrupt { detail, .. }) => {
                assert!(detail.contains("CRC mismatch"), "{detail}")
            }
            other => panic!("expected Corrupt for mid-file damage, got {other:?}"),
        }
        // The garbled bytes were NOT truncated away.
        assert_eq!(fs::read(&path).unwrap().len(), bytes.len());
        // The same flip in the LAST record is indistinguishable from a torn
        // final append and is truncated, not fatal.
        bytes[10] ^= 0xFF; // restore
        let boundaries = {
            let mut b = vec![0usize];
            let mut at = 0usize;
            while at + FRAME_HEADER <= bytes.len() {
                let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
                at += FRAME_HEADER + len;
                b.push(at);
            }
            b
        };
        let last_payload = boundaries[boundaries.len() - 2] + FRAME_HEADER;
        bytes[last_payload] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let replayed = replay(&dir, 0).unwrap();
        assert_eq!(replayed.entries.len(), 4);
        assert!(replayed.truncated_bytes > 0);
        fs::remove_dir_all(&dir).ok();
    }

    /// Delayed-allocation filesystems can extend the final segment with
    /// zeros on a crash (size metadata journaled before the data).  Eight
    /// zero bytes would otherwise decode as a valid empty record
    /// (`crc32("") == 0`) — the zeroed run must be recognized as a torn
    /// tail, not replayed as phantom entries.
    #[test]
    fn zero_filled_tail_is_truncated_not_replayed_as_phantom_records() {
        let dir = temp_wal_dir("zero-tail");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        wal.append("SELECT a FROM t");
        wal.append("SELECT b FROM t");
        wal.sync().unwrap();
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let real_len = bytes.len();
        bytes.extend_from_slice(&[0u8; 64]);
        fs::write(&path, &bytes).unwrap();
        let replayed = replay(&dir, 0).unwrap();
        assert_eq!(
            replayed.entries.len(),
            2,
            "zeros must not decode as phantom records"
        );
        assert_eq!(replayed.next_seq, 3);
        assert_eq!(replayed.truncated_bytes, 64);
        assert_eq!(
            fs::read(&path).unwrap().len(),
            real_len,
            "the zeroed run is physically truncated"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_below_the_tail_is_fatal() {
        let dir = temp_wal_dir("corrupt");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        for i in 0..6 {
            wal.append(&format!("SELECT c{i} FROM t"));
        }
        wal.sync().unwrap();
        // Two segments exist; tear the FIRST one. That is not an
        // interrupted append — journaled evidence is gone.
        let first = segment_path(&dir, 1);
        let bytes = fs::read(&first).unwrap();
        fs::write(&first, &bytes[..bytes.len() - 2]).unwrap();
        match replay(&dir, 0) {
            Err(WalError::Corrupt { segment, .. }) => {
                assert!(segment.contains("00000000000000000001"))
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // A flipped payload byte below the tail is equally fatal.
        fs::write(&first, &bytes).unwrap();
        let mut flipped = fs::read(&first).unwrap();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        fs::write(&first, &flipped).unwrap();
        assert!(matches!(
            replay(&dir, 0),
            Err(WalError::Corrupt { .. }) | Ok(_)
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_covered_segments_are_detected() {
        let dir = temp_wal_dir("gap");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        for i in 0..10 {
            wal.append(&format!("SELECT c{i} FROM t"));
        }
        wal.sync().unwrap();
        // Remove the middle segment: 1..=4 and 9..=10 remain.
        fs::remove_file(segment_path(&dir, 5)).unwrap();
        match replay(&dir, 0) {
            Err(WalError::Corrupt { detail, .. }) => {
                assert!(detail.contains("not contiguous"), "{detail}")
            }
            other => panic!("expected Corrupt for a gap, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// A gap wholly covered by the snapshot watermark (e.g. a stale
    /// truncated segment left behind by a recovery whose records a later
    /// checkpoint absorbed) must not block replay of the live tail.
    #[test]
    fn gaps_below_the_watermark_are_benign() {
        let dir = temp_wal_dir("benign-gap");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        for i in 0..10 {
            wal.append(&format!("SELECT c{i} FROM t"));
        }
        wal.sync().unwrap();
        fs::remove_file(segment_path(&dir, 5)).unwrap();
        // Records 5..=8 are missing but the watermark covers through 8.
        let replayed = replay(&dir, 8).unwrap();
        assert_eq!(
            replayed.entries.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![9, 10]
        );
        assert_eq!(replayed.next_seq, 11);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_removes_only_wholly_covered_segments() {
        let dir = temp_wal_dir("gc");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        for i in 0..10 {
            wal.append(&format!("SELECT c{i} FROM t"));
        }
        wal.sync().unwrap();
        // Segments: [1..=4], [5..=8], [9..]. Watermark 6 covers only the
        // first segment wholly.
        assert_eq!(gc_segments(&dir, 6).unwrap(), 1);
        let firsts: Vec<u64> = list_segments(&FsStorage, &dir)
            .unwrap()
            .iter()
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(firsts, vec![5, 9]);
        // Watermark 10 covers [5..=8] too; the active segment survives.
        assert_eq!(gc_segments(&dir, 10).unwrap(), 1);
        let firsts: Vec<u64> = list_segments(&FsStorage, &dir)
            .unwrap()
            .iter()
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(firsts, vec![9]);
        // Replay above the watermark still works after GC.
        let replayed = replay(&dir, 8).unwrap();
        assert_eq!(replayed.entries.len(), 2);
        assert_eq!(replayed.next_seq, 11);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_journal_replays_to_nothing() {
        let dir = temp_wal_dir("empty");
        let replayed = replay(&dir, 7).unwrap();
        assert!(replayed.entries.is_empty());
        assert_eq!(replayed.next_seq, 8);
    }

    #[test]
    fn batched_replay_matches_eager_replay_under_any_budget() {
        let dir = temp_wal_dir("batched-equiv");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        let statements: Vec<String> = (0..17)
            .map(|i| format!("SELECT col{i} FROM t{} WHERE x > {i}", i % 3))
            .collect();
        for sql in &statements {
            wal.append(sql);
        }
        wal.sync().unwrap();
        let eager = replay(&dir, 3).unwrap();
        for budget in [1usize, 64, 200, 1 << 20, usize::MAX] {
            let mut collected = Vec::new();
            let mut sink_calls = 0u64;
            let stats = replay_batched(&dir, 3, budget, &mut |batch| {
                assert!(!batch.is_empty(), "sink never sees an empty batch");
                sink_calls += 1;
                collected.extend_from_slice(batch);
            })
            .unwrap();
            assert_eq!(collected, eager.entries, "budget {budget}");
            assert_eq!(stats.next_seq, eager.next_seq);
            assert_eq!(stats.truncated_bytes, 0);
            assert_eq!(stats.replayed, eager.entries.len() as u64);
            assert_eq!(stats.batches, sink_calls);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_budget_bounds_the_peak_and_oversized_entries_ride_alone() {
        let dir = temp_wal_dir("batched-budget");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        let small = "SELECT a FROM t";
        let huge = format!("SELECT {} FROM t", "x, ".repeat(400));
        for _ in 0..6 {
            wal.append(small);
        }
        wal.append(&huge);
        wal.append(small);
        wal.sync().unwrap();

        let budget = 2 * (small.len() + ENTRY_OVERHEAD) + 1;
        let mut batch_sizes = Vec::new();
        let stats = replay_batched(&dir, 0, budget, &mut |batch| {
            batch_sizes.push(batch.len());
        })
        .unwrap();
        assert_eq!(stats.replayed, 8);
        assert_eq!(batch_sizes.iter().sum::<usize>(), 8);
        // Small entries pack two to a batch; the huge entry exceeds the whole
        // budget and still flows through as a batch of one.
        assert!(batch_sizes.contains(&1), "oversized entry rides alone");
        assert!(batch_sizes.iter().all(|&n| n <= 2));
        let huge_cost = (huge.len() + ENTRY_OVERHEAD) as u64;
        assert_eq!(
            stats.peak_batch_bytes, huge_cost,
            "peak is max(budget, largest entry)"
        );
        assert_eq!(stats.batches, batch_sizes.len() as u64);

        // A generous budget folds everything into one batch whose size is
        // the exact sum of accounted entry costs.
        let mut batches = 0u64;
        let stats = replay_batched(&dir, 0, 1 << 20, &mut |_| batches += 1).unwrap();
        assert_eq!(batches, 1);
        let total_cost = 7 * (small.len() + ENTRY_OVERHEAD) as u64 + huge_cost;
        assert_eq!(stats.peak_batch_bytes, total_cost);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_replay_still_truncates_a_torn_tail() {
        let dir = temp_wal_dir("batched-torn");
        let mut wal = WalWriter::create(&dir, 1, fast_config()).unwrap();
        wal.append("SELECT a FROM t");
        wal.append("SELECT b FROM t");
        wal.sync().unwrap();
        // Tear the final record: chop bytes off the segment's tail.
        let (_, path) = list_segments(&FsStorage, &dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        file.sync_all().unwrap();

        let mut collected = Vec::new();
        let stats = replay_batched(&dir, 0, 64, &mut |batch| {
            collected.extend_from_slice(batch);
        })
        .unwrap();
        assert_eq!(collected, vec![(1, "SELECT a FROM t".to_string())]);
        assert!(stats.truncated_bytes > 0);
        assert_eq!(stats.next_seq, 2);
        // The truncation was physical: a second replay sees a clean journal.
        let again = replay(&dir, 0).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.entries.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    /// Write-side torn matrix: crash the storage at **every cumulative byte
    /// budget** across the whole append stream — every record boundary and
    /// every intra-record offset, spanning a segment rotation — and assert
    /// recovery returns exactly a prefix of the appended entries that
    /// covers every *acknowledged* (successfully synced) one.  A crash can
    /// lose staged-but-unacknowledged frames and tear the final frame; it
    /// must never lose an acknowledged frame, reorder, or invent one.
    #[test]
    fn write_crash_at_every_byte_budget_recovers_the_acknowledged_prefix() {
        use crate::storage::FaultyStorage;

        let entries: Vec<String> = (0..6).map(|i| format!("SELECT c{i} FROM t")).collect();

        // Clean pass: total bytes the append stream writes (rotation at 4
        // records, so the matrix spans a segment boundary too).
        let clean_dir = temp_wal_dir("crash-matrix-clean");
        let counting = FaultyStorage::new();
        {
            let mut wal =
                WalWriter::create_with(counting.clone(), &clean_dir, 1, fast_config()).unwrap();
            for sql in &entries {
                wal.append(sql);
                wal.sync().unwrap();
            }
        }
        let total = counting.bytes_written();
        assert!(total > 0);
        fs::remove_dir_all(&clean_dir).ok();

        for budget in 0..=total {
            let dir = temp_wal_dir(&format!("crash-matrix-{budget}"));
            let storage = FaultyStorage::new();
            storage.crash_after_write_bytes(budget);
            let mut acknowledged = 0usize;
            if let Ok(mut wal) = WalWriter::create_with(storage.clone(), &dir, 1, fast_config()) {
                for (i, sql) in entries.iter().enumerate() {
                    wal.append(sql);
                    if wal.sync().is_ok() {
                        acknowledged = i + 1;
                    }
                }
            }
            // Recovery reads the real filesystem — exactly the bytes that
            // survived the crash.
            let replayed = replay(&dir, 0).unwrap_or_else(|e| {
                panic!("budget {budget}: replay must absorb a write-side crash, got {e}")
            });
            assert!(
                replayed.entries.len() >= acknowledged,
                "budget {budget}: {acknowledged} entries were acknowledged durable but only {} \
                 recovered",
                replayed.entries.len()
            );
            assert!(
                replayed.entries.len() <= entries.len(),
                "budget {budget}: recovery invented entries"
            );
            for (i, (seq, sql)) in replayed.entries.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1, "budget {budget}: sequence gap");
                assert_eq!(sql, &entries[i], "budget {budget}: payload mismatch");
            }
            fs::remove_dir_all(&dir).ok();
        }
    }
}
