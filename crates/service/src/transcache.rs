//! The epoch-keyed translation cache and the cross-request batch memo —
//! the serving plane's repeated-traffic fast paths.
//!
//! Real NLIDB traffic is Zipfian: the query log exists because users ask
//! the same questions over and over (the paper's premise).  Two structures
//! exploit that here:
//!
//! * [`TranslationCache`] maps (normalized question, keywords, override
//!   signature) to a complete successful `TranslateResponse` and is
//!   invalidated *wholesale* whenever a new snapshot epoch is published —
//!   an entry can therefore never outlive the snapshot that computed it,
//!   and a hit is byte-identical to recomputing against that snapshot.
//! * [`BatchMemo`] shares *pruned candidate lists* between concurrently
//!   in-flight requests on the same snapshot: candidate retrieval, σ
//!   scoring (word-vector similarity) and pruning run once per distinct
//!   keyword across the batch.  Lists are override-independent (only λ,
//!   `use_log_joins` and `top_k` vary per request, and none of them reach
//!   pruning), so sharing them preserves byte-identical responses.
//!
//! Both structures key their validity on the *snapshot epoch* — and the
//! memo additionally on the snapshot `Arc`'s address, because `publish()`
//! stores the new snapshot before bumping the epoch, so two requests can
//! transiently hold different snapshots under the same epoch number.  Both
//! `Arc`s are alive simultaneously in that window, so their addresses are
//! necessarily distinct and the pointer cannot ABA.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use templar_api::{RequestOverrides, TranslateResponse};
use templar_core::{CandidateMemo, Keyword, KeywordMetadata, MappingCandidate, SearchStats};

/// Shard count of the translation cache (a power of two; requests hash
/// across shards so concurrent lookups rarely contend on one lock).
const SHARDS: usize = 8;

/// Upper bound on distinct keyword entries a single batch memo retains;
/// beyond it, `put` becomes a no-op (correct — the memo is an optimization,
/// never an oracle).
const MEMO_CAP: usize = 256;

/// Append one canonically-serialized component to a cache key: the
/// component's JSON form behind an explicit byte-length prefix.  The length
/// prefix makes concatenation unambiguous whatever the content — no two
/// distinct component sequences can collide by resegmentation.  Returns
/// `false` if the component refuses to serialize; the caller must then
/// treat the whole key as unusable rather than cache under a prefix.
fn push_canonical<T: serde::Serialize>(key: &mut String, part: &T) -> bool {
    match serde_json::to_string(part) {
        Ok(json) => {
            key.push_str(&format!("{}:", json.len()));
            key.push_str(&json);
            true
        }
        Err(_) => false,
    }
}

/// The cache key of one translate request: the question normalized
/// (lowercased, whitespace collapsed), the exact keyword tuples, and the
/// override signature.  λ is keyed by its *bit pattern* so `0.3` and the
/// nearest-but-different float never alias; `search_budget` and the other
/// structural parameters are fixed per tenant and covered by the epoch, so
/// they do not appear here.
///
/// Keyword tuples are keyed by their *canonical serialization*
/// ([`push_canonical`]), not their `Debug` format — `Debug` output is
/// explicitly not a stability contract, and a derived formatter neither
/// escapes field separators nor pins its shape across refactors.
pub(crate) fn request_key(
    nlq: &str,
    keywords: &[(Keyword, KeywordMetadata)],
    overrides: &RequestOverrides,
) -> Option<String> {
    let mut key = String::with_capacity(nlq.len() + 64);
    for word in nlq.split_whitespace() {
        if !key.is_empty() {
            key.push(' ');
        }
        key.extend(word.chars().flat_map(char::to_lowercase));
    }
    key.push('\u{1}');
    for (keyword, meta) in keywords {
        if !push_canonical(&mut key, keyword) || !push_canonical(&mut key, meta) {
            return None;
        }
    }
    key.push('\u{1}');
    match overrides.lambda {
        Some(lambda) => key.push_str(&format!("l{:016x}", lambda.to_bits())),
        None => key.push('-'),
    }
    match overrides.use_log_joins {
        Some(flag) => key.push_str(if flag { "j1" } else { "j0" }),
        None => key.push('-'),
    }
    match overrides.top_k {
        Some(top_k) => key.push_str(&format!("k{top_k}")),
        None => key.push('-'),
    }
    Some(key)
}

/// One cached successful translation: the trace-free response plus the
/// search counters of the computation that produced it (re-attached to
/// traced hits so explanations still show the original work).
#[derive(Debug, Clone)]
pub(crate) struct CachedTranslation {
    pub response: TranslateResponse,
    pub search: SearchStats,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, CachedTranslation>,
    /// FIFO insertion order for eviction at the per-shard capacity bound —
    /// the same policy as the core join cache.
    order: VecDeque<String>,
}

/// The bounded, sharded, snapshot-epoch-keyed translation cache.
#[derive(Debug)]
pub(crate) struct TranslationCache {
    shards: Vec<Mutex<Shard>>,
    /// Entries per shard.  0 disables the cache entirely.
    shard_capacity: usize,
    /// The snapshot epoch the resident entries were computed against.
    /// Bumped (and all shards cleared) by [`TranslationCache::invalidate`]
    /// on every snapshot publish.
    epoch: AtomicU64,
}

impl TranslationCache {
    pub fn new(capacity: usize) -> Self {
        TranslationCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current cache epoch.  Read it *before* loading the snapshot:
    /// publish stores the snapshot first and invalidates second, so an
    /// epoch read before the load can only be older-or-equal than the
    /// loaded snapshot — a stale insert is then rejected by
    /// [`TranslationCache::insert_if_epoch`], never admitted.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    pub fn get(&self, key: &str) -> Option<CachedTranslation> {
        if self.shard_capacity == 0 {
            return None;
        }
        self.shard(key).lock().map.get(key).cloned()
    }

    /// Insert a computed translation if the cache is still on the epoch the
    /// computation started from; returns the number of entries evicted at
    /// the capacity bound.  A concurrent publish between the compute and
    /// this insert bumps the epoch, and the now-stale entry is dropped on
    /// the floor — the worst case of the race is a rejected insert, never a
    /// stale entry.
    pub fn insert_if_epoch(&self, epoch: u64, key: String, value: CachedTranslation) -> u64 {
        if self.shard_capacity == 0 {
            return 0;
        }
        let shard = self.shard(&key);
        let mut guard = shard.lock();
        if self.epoch.load(Ordering::Acquire) != epoch {
            return 0;
        }
        let mut evicted = 0;
        if guard.map.insert(key.clone(), value).is_none() {
            guard.order.push_back(key);
            while guard.map.len() > self.shard_capacity {
                if let Some(oldest) = guard.order.pop_front() {
                    guard.map.remove(&oldest);
                    evicted += 1;
                } else {
                    break;
                }
            }
        }
        evicted
    }

    /// Wholesale invalidation on snapshot publish: bump the epoch, then
    /// clear every shard.  In-flight computations that started under the
    /// old epoch will fail their `insert_if_epoch` check.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.map.clear();
            guard.order.clear();
        }
    }

    /// Resident entries across all shards (the metrics gauge).
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.lock().map.len() as u64)
            .sum()
    }
}

/// Identity of the snapshot a batch is scoped to: the cache epoch read
/// before the snapshot load, plus the snapshot `Arc`'s address (see the
/// module docs for why the epoch alone is not enough during the
/// store-then-invalidate publish window).
pub(crate) type BatchKey = (u64, usize);

#[derive(Debug, Default)]
struct BatchState {
    key: BatchKey,
    /// How many requests currently hold a [`BatchGuard`] on this batch.
    inflight: usize,
    lists: HashMap<String, Vec<MappingCandidate>>,
}

/// Cross-request candidate-list sharing: requests concurrently in flight on
/// the same snapshot form a batch, and each distinct keyword's pruned
/// candidate list is computed once across it.  When the last request of a
/// batch finishes, the memo empties — the structure only ever holds data
/// for the keywords of requests executing *right now*.
#[derive(Debug, Default)]
pub(crate) struct BatchMemo {
    state: Mutex<BatchState>,
}

impl BatchMemo {
    /// Join the batch for `key`, clearing any residue from a previous
    /// snapshot's batch first.  The returned guard is the request's
    /// [`CandidateMemo`]; dropping it leaves the batch.
    pub fn enter<'a>(&'a self, key: BatchKey) -> BatchGuard<'a> {
        let mut state = self.state.lock();
        if state.key != key {
            state.key = key;
            state.inflight = 0;
            state.lists.clear();
        }
        state.inflight += 1;
        BatchGuard { memo: self, key }
    }
}

/// One request's membership in a [`BatchMemo`] batch.
pub(crate) struct BatchGuard<'a> {
    memo: &'a BatchMemo,
    key: BatchKey,
}

impl CandidateMemo for BatchGuard<'_> {
    fn get(&self, keyword: &Keyword, meta: &KeywordMetadata) -> Option<Vec<MappingCandidate>> {
        let state = self.memo.state.lock();
        if state.key != self.key {
            return None;
        }
        state.lists.get(&memo_key(keyword, meta)?).cloned()
    }

    fn put(&self, keyword: &Keyword, meta: &KeywordMetadata, pruned: &[MappingCandidate]) {
        let Some(key) = memo_key(keyword, meta) else {
            return;
        };
        let mut state = self.memo.state.lock();
        if state.key != self.key || state.lists.len() >= MEMO_CAP {
            return;
        }
        state.lists.entry(key).or_insert_with(|| pruned.to_vec());
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.memo.state.lock();
        if state.key != self.key {
            return;
        }
        state.inflight = state.inflight.saturating_sub(1);
        if state.inflight == 0 {
            state.lists.clear();
        }
    }
}

fn memo_key(keyword: &Keyword, meta: &KeywordMetadata) -> Option<String> {
    let mut key = String::new();
    if !push_canonical(&mut key, keyword) || !push_canonical(&mut key, meta) {
        return None;
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(tenant: &str) -> CachedTranslation {
        CachedTranslation {
            response: TranslateResponse {
                tenant: tenant.to_string(),
                candidates: Vec::new(),
                trace: None,
            },
            search: SearchStats::default(),
        }
    }

    #[test]
    fn keys_distinguish_overrides_but_normalize_whitespace() {
        let keywords = vec![(Keyword::new("papers"), KeywordMetadata::select())];
        let base = RequestOverrides::default();
        let a = request_key("Papers  after\t2000", &keywords, &base);
        let b = request_key("papers after 2000", &keywords, &base);
        assert_eq!(a, b, "case and whitespace are normalized away");
        let with_lambda = RequestOverrides {
            lambda: Some(0.5),
            ..Default::default()
        };
        assert_ne!(a, request_key("papers after 2000", &keywords, &with_lambda));
        let other_keywords = vec![(Keyword::new("authors"), KeywordMetadata::select())];
        assert_ne!(a, request_key("papers after 2000", &other_keywords, &base));
    }

    #[test]
    fn keys_are_canonical_collision_free_and_pinned() {
        use sqlparse::BinOp;
        let base = RequestOverrides::default();
        let select = KeywordMetadata::select;
        // Resegmentation attack: the same concatenated text split across
        // different keyword boundaries must produce different keys (the
        // Debug-format key had no length prefixes, so separator-free
        // adjacent fields could alias).
        let ab_c = vec![
            (Keyword::new("ab"), select()),
            (Keyword::new("c"), select()),
        ];
        let a_bc = vec![
            (Keyword::new("a"), select()),
            (Keyword::new("bc"), select()),
        ];
        assert_ne!(
            request_key("q", &ab_c, &base),
            request_key("q", &a_bc, &base)
        );
        // Keyword text carrying the key separator and JSON metacharacters
        // stays unambiguous behind the length prefix.
        let hostile = vec![(Keyword::new("x\u{1}21:{\"text\":\"y\"}"), select())];
        let inner = vec![(Keyword::new("x"), select()), (Keyword::new("y"), select())];
        assert_ne!(
            request_key("q", &hostile, &base),
            request_key("q", &inner, &base)
        );
        // Stability pin: the canonical layout is a compatibility contract —
        // normalized question, SOH-delimited length-prefixed JSON tuples,
        // then the override signature.  A formatter or derive change that
        // shifts this layout must fail here, not silently split the cache.
        let kws = vec![(
            Keyword::new("after 2000"),
            KeywordMetadata::filter_with_op(BinOp::Gt),
        )];
        assert_eq!(
            request_key("Papers  after\t2000", &kws, &base).unwrap(),
            "papers after 2000\u{1}\
             21:{\"text\":\"after 2000\"}\
             62:{\"context\":\"Where\",\"op\":\"Gt\",\"aggregates\":[],\"group_by\":false}\
             \u{1}---"
        );
        assert_eq!(
            memo_key(&kws[0].0, &kws[0].1).unwrap(),
            "21:{\"text\":\"after 2000\"}\
             62:{\"context\":\"Where\",\"op\":\"Gt\",\"aggregates\":[],\"group_by\":false}"
        );
    }

    #[test]
    fn inserts_are_rejected_after_invalidation() {
        let cache = TranslationCache::new(64);
        let epoch = cache.epoch();
        cache.invalidate();
        assert_eq!(
            cache.insert_if_epoch(epoch, "stale".to_string(), response("t")),
            0
        );
        assert!(cache.get("stale").is_none(), "stale insert must be dropped");
        let epoch = cache.epoch();
        cache.insert_if_epoch(epoch, "fresh".to_string(), response("t"));
        assert!(cache.get("fresh").is_some());
        assert_eq!(cache.entries(), 1);
        cache.invalidate();
        assert!(cache.get("fresh").is_none(), "invalidate clears all shards");
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn capacity_bound_evicts_fifo_and_zero_disables() {
        let cache = TranslationCache::new(SHARDS); // one entry per shard
        let epoch = cache.epoch();
        let mut evicted = 0;
        for i in 0..64 {
            evicted += cache.insert_if_epoch(epoch, format!("q{i}"), response("t"));
        }
        assert!(evicted > 0, "overflowing a shard evicts");
        assert!(cache.entries() <= SHARDS as u64);

        let disabled = TranslationCache::new(0);
        let epoch = disabled.epoch();
        assert_eq!(
            disabled.insert_if_epoch(epoch, "q".to_string(), response("t")),
            0
        );
        assert!(disabled.get("q").is_none());
    }

    #[test]
    fn batch_memo_shares_within_a_batch_and_clears_after() {
        let memo = BatchMemo::default();
        let kw = Keyword::new("papers");
        let meta = KeywordMetadata::select();
        let guard_a = memo.enter((1, 0xbeef));
        let guard_b = memo.enter((1, 0xbeef));
        assert!(guard_a.get(&kw, &meta).is_none());
        guard_a.put(&kw, &meta, &[]);
        assert!(guard_b.get(&kw, &meta).is_some(), "batch members share");
        drop(guard_a);
        assert!(
            guard_b.get(&kw, &meta).is_some(),
            "memo survives while members remain"
        );
        drop(guard_b);
        let guard_c = memo.enter((1, 0xbeef));
        assert!(
            guard_c.get(&kw, &meta).is_none(),
            "memo empties when the batch drains"
        );
    }

    #[test]
    fn batch_memo_isolates_different_snapshots() {
        let memo = BatchMemo::default();
        let kw = Keyword::new("papers");
        let meta = KeywordMetadata::select();
        let old = memo.enter((1, 0xaaaa));
        old.put(&kw, &meta, &[]);
        // A request on a different snapshot (same epoch, different Arc
        // address — the publish window) resets the batch.
        let new = memo.enter((1, 0xbbbb));
        assert!(new.get(&kw, &meta).is_none(), "stale lists are unreachable");
        // The displaced guard can no longer read or write.
        assert!(old.get(&kw, &meta).is_none());
        old.put(&kw, &meta, &[]);
        drop(old); // must not disturb the new batch's inflight count
        assert!(new.get(&kw, &meta).is_none());
        new.put(&kw, &meta, &[]);
        assert!(new.get(&kw, &meta).is_some());
    }
}
