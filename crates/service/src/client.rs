//! An in-process client for the JSON line protocol.
//!
//! [`RegistryClient`] speaks to a [`TenantRegistry`] *through the wire
//! encoding*: every call serializes a request envelope, hands the line to
//! the registry, and decodes the response line.  In-process it exists so
//! examples and tests exercise exactly the bytes a remote client would send;
//! a socket transport only needs to replace the `handle_line` hop.

use crate::registry::TenantRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use templar_api::{
    decode_response, encode_request, ApiError, HealthReport, MetricsReport, RequestBody,
    RequestEnvelope, ResponseBody, SlowQueryReport, TranslateRequest, TranslateResponse,
};

/// Is `error` a transient serving condition worth retrying — the queue is
/// momentarily full ([`ApiError::Backpressure`]) or the tenant is riding out
/// a journal failure in read-only mode ([`ApiError::Degraded`])?  Everything
/// else (bad requests, unknown tenants, durability faults) is final.
pub fn is_retryable(error: &ApiError) -> bool {
    matches!(error, ApiError::Backpressure | ApiError::Degraded)
}

/// Run `op` until it succeeds, returns a non-retryable error, or `deadline`
/// elapses — whichever comes first.  Between attempts the helper sleeps with
/// exponential backoff from `base` (doubling, capped at one second), clipped
/// to the time remaining, so a caller-supplied deadline is honoured even
/// when the service stays degraded for its whole span.  The terminal error
/// is the last one observed (so a deadline expiry still reports *why* the
/// service was refusing writes).
pub fn retry_with_deadline<T>(
    deadline: Duration,
    base: Duration,
    mut op: impl FnMut() -> Result<T, ApiError>,
) -> Result<T, ApiError> {
    let started = Instant::now();
    let mut backoff = base.max(Duration::from_micros(100));
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(error) if !is_retryable(&error) => return Err(error),
            Err(error) => {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    return Err(error);
                }
                std::thread::sleep(backoff.min(deadline - elapsed));
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// A typed client over the line protocol, bound to one registry.
pub struct RegistryClient<'a> {
    registry: &'a TenantRegistry,
    next_id: AtomicU64,
}

impl<'a> RegistryClient<'a> {
    /// A client with correlation ids starting at 1.
    pub fn new(registry: &'a TenantRegistry) -> Self {
        RegistryClient {
            registry,
            next_id: AtomicU64::new(1),
        }
    }

    fn roundtrip(&self, body: RequestBody) -> Result<ResponseBody, ApiError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let line = encode_request(&RequestEnvelope::new(id, body));
        let response_line = self.registry.handle_line(&line);
        let envelope = decode_response(&response_line)?;
        debug_assert!(
            envelope.id == id || envelope.id == 0,
            "response correlation id must echo the request"
        );
        envelope.into_result()
    }

    /// Translate one request, through the wire encoding and back.
    pub fn translate(&self, request: TranslateRequest) -> Result<TranslateResponse, ApiError> {
        match self.roundtrip(RequestBody::Translate(request))? {
            ResponseBody::Translated(response) => Ok(response),
            other => Err(ApiError::MalformedEnvelope {
                detail: format!("unexpected response body for Translate: {other:?}"),
            }),
        }
    }

    /// Submit answered SQL to a tenant's log.
    pub fn submit_sql(&self, tenant: &str, sql: &str) -> Result<(), ApiError> {
        match self.roundtrip(RequestBody::SubmitSql {
            tenant: tenant.to_string(),
            sql: sql.to_string(),
        })? {
            ResponseBody::SqlAccepted => Ok(()),
            other => Err(ApiError::MalformedEnvelope {
                detail: format!("unexpected response body for SubmitSql: {other:?}"),
            }),
        }
    }

    /// Report accepted SQL back to a tenant — the client's half of the
    /// learning loop.  The entry rides the same durable ingest path as
    /// [`RegistryClient::submit_sql`] and is counted under
    /// `feedback_accepted` in the tenant's metrics.
    pub fn feedback(&self, tenant: &str, sql: &str) -> Result<(), ApiError> {
        match self.roundtrip(RequestBody::Feedback {
            tenant: tenant.to_string(),
            sql: sql.to_string(),
        })? {
            ResponseBody::FeedbackAccepted => Ok(()),
            other => Err(ApiError::MalformedEnvelope {
                detail: format!("unexpected response body for Feedback: {other:?}"),
            }),
        }
    }

    /// Submit answered SQL, retrying [`ApiError::Backpressure`] and
    /// [`ApiError::Degraded`] with exponential backoff until `deadline`
    /// elapses.  See [`retry_with_deadline`].
    pub fn submit_sql_with_deadline(
        &self,
        tenant: &str,
        sql: &str,
        deadline: Duration,
        base_backoff: Duration,
    ) -> Result<(), ApiError> {
        retry_with_deadline(deadline, base_backoff, || self.submit_sql(tenant, sql))
    }

    /// Report accepted SQL, retrying transient refusals until `deadline`
    /// elapses.  See [`retry_with_deadline`].
    pub fn feedback_with_deadline(
        &self,
        tenant: &str,
        sql: &str,
        deadline: Duration,
        base_backoff: Duration,
    ) -> Result<(), ApiError> {
        retry_with_deadline(deadline, base_backoff, || self.feedback(tenant, sql))
    }

    /// Fetch a tenant's health report.  Health is exempt from admission
    /// control and never refused in degraded mode — it is the request an
    /// operator's probe sends to find out *why* writes are bouncing.
    pub fn health(&self, tenant: &str) -> Result<HealthReport, ApiError> {
        match self.roundtrip(RequestBody::Health {
            tenant: tenant.to_string(),
        })? {
            ResponseBody::Health(report) => Ok(report),
            other => Err(ApiError::MalformedEnvelope {
                detail: format!("unexpected response body for Health: {other:?}"),
            }),
        }
    }

    /// Fetch a tenant's serving metrics.
    pub fn metrics(&self, tenant: &str) -> Result<MetricsReport, ApiError> {
        match self.roundtrip(RequestBody::Metrics {
            tenant: tenant.to_string(),
        })? {
            ResponseBody::Metrics(report) => Ok(*report),
            other => Err(ApiError::MalformedEnvelope {
                detail: format!("unexpected response body for Metrics: {other:?}"),
            }),
        }
    }

    /// Fetch a tenant's captured slow queries, slowest first.
    pub fn slow_queries(&self, tenant: &str) -> Result<Vec<SlowQueryReport>, ApiError> {
        match self.roundtrip(RequestBody::SlowQueries {
            tenant: tenant.to_string(),
        })? {
            ResponseBody::SlowQueries(reports) => Ok(reports),
            other => Err(ApiError::MalformedEnvelope {
                detail: format!("unexpected response body for SlowQueries: {other:?}"),
            }),
        }
    }

    /// Fetch metrics in Prometheus text exposition format — one tenant, or
    /// every registered tenant when `tenant` is `None`.
    pub fn prometheus(&self, tenant: Option<&str>) -> Result<String, ApiError> {
        match self.roundtrip(RequestBody::Prometheus {
            tenant: tenant.map(str::to_string),
        })? {
            ResponseBody::Prometheus(text) => Ok(text),
            other => Err(ApiError::MalformedEnvelope {
                detail: format!("unexpected response body for Prometheus: {other:?}"),
            }),
        }
    }
}
