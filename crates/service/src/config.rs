//! Serving-layer configuration.

use std::time::Duration;

/// Durability tunables of the write-ahead ingest journal (see
/// [`crate::wal`]).  Only consulted by services started through
/// [`TemplarService::recover`](crate::TemplarService::recover) — a plain
/// in-memory service never touches the filesystem.
#[derive(Debug, Clone, PartialEq)]
pub struct WalConfig {
    /// Fsync the journal once this many appended records are dirty
    /// (group commit).  `1` fsyncs every record — maximum durability,
    /// minimum throughput.
    pub fsync_every: usize,
    /// Also fsync when any record has been dirty this long, so a trickle of
    /// ingests is never more than one interval away from durability.
    pub fsync_interval: Duration,
    /// Seal a segment file and start the next after this many records;
    /// segments wholly below the snapshot watermark are garbage-collected.
    pub segment_max_records: u64,
    /// Upper bound on frames staged in memory awaiting a successful journal
    /// write.  When a wedged disk keeps the buffer above this for a whole
    /// batch cycle, the worker stops draining the queue, so producers see
    /// [`ServiceError::QueueFull`](crate::ServiceError::QueueFull)
    /// backpressure instead of the process growing without bound.
    pub max_staged_bytes: usize,
    /// In-line journal sync attempts before the service declares the disk
    /// failing and enters degraded read-only mode (clamped to ≥ 1; the
    /// first attempt counts, so `3` means "one try plus two retries").
    pub journal_retry_attempts: u32,
    /// Backoff before the first in-line retry; doubles per retry (with
    /// deterministic jitter) up to `journal_retry_max_backoff`.  The same
    /// schedule paces the degraded-mode heal probe.
    pub journal_retry_base_backoff: Duration,
    /// Cap on the exponential retry/heal-probe backoff.
    pub journal_retry_max_backoff: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync_every: 16,
            fsync_interval: Duration::from_millis(20),
            segment_max_records: 8192,
            max_staged_bytes: 8 * 1024 * 1024,
            journal_retry_attempts: 3,
            journal_retry_base_backoff: Duration::from_millis(5),
            journal_retry_max_backoff: Duration::from_millis(500),
        }
    }
}

/// Tunables of the [`TemplarService`](crate::TemplarService) serving loop.
///
/// The Templar-level parameters (κ, λ, obscurity, …) stay in
/// [`templar_core::TemplarConfig`]; this struct only shapes the *operational*
/// behaviour: queue bounds, snapshot refresh cadence and log retention.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Capacity of the bounded ingestion queue.  `submit_sql` fails fast
    /// with `ServiceError::QueueFull` when the queue is at capacity, so a
    /// slow rebuild can never exert unbounded memory pressure.
    pub queue_capacity: usize,
    /// Publish a fresh snapshot after this many newly-applied log entries
    /// (the "epoch" size).
    pub refresh_every: usize,
    /// Also publish a fresh snapshot when there are pending entries and this
    /// much time has passed since the last publication, so a trickle of
    /// ingests still becomes visible promptly.
    pub refresh_interval: Duration,
    /// Maximum number of entries drained from the queue per worker wake-up.
    pub ingest_batch: usize,
    /// Retain at most this many queries in the live log; the oldest entries
    /// are evicted (and removed from the QFG incrementally) beyond it.
    /// `None` keeps the log unbounded.
    pub max_log_entries: Option<usize>,
    /// Write-ahead journal tunables (durable services only).
    pub wal: WalConfig,
    /// How many of the slowest translations to retain with their per-stage
    /// latency breakdowns ([`TemplarService::slow_queries`](
    /// crate::TemplarService::slow_queries)).  `0` disables capture.
    pub slow_query_capacity: usize,
    /// The tenant's in-flight concurrency quota: how many
    /// admission-controlled operations (translate / ingest / feedback) may
    /// execute for this tenant at once.  Beyond it,
    /// [`TemplarService::try_admit`](crate::TemplarService::try_admit)
    /// sheds the request — surfaced on the wire as
    /// [`ApiError::Backpressure`](templar_api::ApiError::Backpressure) and
    /// counted under `admission_tenant_shed`.
    pub max_inflight: usize,
    /// Capacity of the epoch-keyed translation cache (whole
    /// `TranslateResponse`s keyed by normalized question + override
    /// signature, invalidated wholesale on snapshot publish).  `0` disables
    /// caching entirely — every request computes.
    pub translation_cache_capacity: usize,
    /// Memory budget for one decoded batch of WAL-tail entries during
    /// recovery ([`TemplarService::recover`](crate::TemplarService::recover)).
    /// The journal tail is replayed in batches no larger than this (a single
    /// oversized record still flows through alone), so recovery's peak
    /// decoded-entry footprint is bounded by the budget rather than the tail
    /// length.  Observed per recovery as the `recovery_peak_batch_bytes`
    /// gauge.
    pub recovery_batch_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            refresh_every: 64,
            refresh_interval: Duration::from_millis(250),
            ingest_batch: 128,
            max_log_entries: None,
            wal: WalConfig::default(),
            slow_query_capacity: 16,
            max_inflight: 256,
            translation_cache_capacity: 4096,
            recovery_batch_bytes: 4 * 1024 * 1024,
        }
    }
}

impl ServiceConfig {
    /// Set the ingestion queue capacity (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the snapshot refresh epoch (clamped to ≥ 1).
    pub fn with_refresh_every(mut self, every: usize) -> Self {
        self.refresh_every = every.max(1);
        self
    }

    /// Set the time-based refresh interval.
    pub fn with_refresh_interval(mut self, interval: Duration) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Bound the live log to `n` entries (eviction beyond it).
    pub fn with_max_log_entries(mut self, n: usize) -> Self {
        self.max_log_entries = Some(n.max(1));
        self
    }

    /// Fsync the journal after this many dirty records (clamped to ≥ 1).
    pub fn with_wal_fsync_every(mut self, every: usize) -> Self {
        self.wal.fsync_every = every.max(1);
        self
    }

    /// Fsync the journal once any record has been dirty this long.
    pub fn with_wal_fsync_interval(mut self, interval: Duration) -> Self {
        self.wal.fsync_interval = interval;
        self
    }

    /// Seal journal segments after this many records (clamped to ≥ 1).
    pub fn with_wal_segment_max_records(mut self, records: u64) -> Self {
        self.wal.segment_max_records = records.max(1);
        self
    }

    /// Bound the journal's in-memory staging buffer (clamped to ≥ 1 KiB).
    pub fn with_wal_max_staged_bytes(mut self, bytes: usize) -> Self {
        self.wal.max_staged_bytes = bytes.max(1024);
        self
    }

    /// In-line journal sync attempts before degrading (clamped to ≥ 1).
    pub fn with_journal_retry_attempts(mut self, attempts: u32) -> Self {
        self.wal.journal_retry_attempts = attempts.max(1);
        self
    }

    /// Base backoff before the first journal retry (doubles per retry).
    pub fn with_journal_retry_base_backoff(mut self, backoff: Duration) -> Self {
        self.wal.journal_retry_base_backoff = backoff;
        self
    }

    /// Cap on the exponential journal retry / heal-probe backoff.
    pub fn with_journal_retry_max_backoff(mut self, backoff: Duration) -> Self {
        self.wal.journal_retry_max_backoff = backoff;
        self
    }

    /// Retain this many slow-query captures (0 disables capture).
    pub fn with_slow_query_capacity(mut self, capacity: usize) -> Self {
        self.slow_query_capacity = capacity;
        self
    }

    /// Set the tenant's in-flight concurrency quota (clamped to ≥ 1).
    pub fn with_max_inflight(mut self, quota: usize) -> Self {
        self.max_inflight = quota.max(1);
        self
    }

    /// Bound the translation cache (0 disables caching).
    pub fn with_translation_cache_capacity(mut self, capacity: usize) -> Self {
        self.translation_cache_capacity = capacity;
        self
    }

    /// Bound one decoded recovery batch (clamped to ≥ 4 KiB).
    pub fn with_recovery_batch_bytes(mut self, bytes: usize) -> Self {
        self.recovery_batch_bytes = bytes.max(4096);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp() {
        let c = ServiceConfig::default()
            .with_queue_capacity(0)
            .with_refresh_every(0)
            .with_max_log_entries(0)
            .with_wal_fsync_every(0)
            .with_wal_segment_max_records(0)
            .with_max_inflight(0)
            .with_journal_retry_attempts(0)
            .with_recovery_batch_bytes(0);
        assert_eq!(c.queue_capacity, 1);
        assert_eq!(c.refresh_every, 1);
        assert_eq!(c.max_log_entries, Some(1));
        assert_eq!(c.wal.fsync_every, 1);
        assert_eq!(c.wal.segment_max_records, 1);
        assert_eq!(c.max_inflight, 1);
        assert_eq!(c.wal.journal_retry_attempts, 1);
        assert_eq!(c.recovery_batch_bytes, 4096);
    }
}
