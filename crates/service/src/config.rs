//! Serving-layer configuration.

use std::time::Duration;

/// Tunables of the [`TemplarService`](crate::TemplarService) serving loop.
///
/// The Templar-level parameters (κ, λ, obscurity, …) stay in
/// [`templar_core::TemplarConfig`]; this struct only shapes the *operational*
/// behaviour: queue bounds, snapshot refresh cadence and log retention.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Capacity of the bounded ingestion queue.  `submit_sql` fails fast
    /// with `ServiceError::QueueFull` when the queue is at capacity, so a
    /// slow rebuild can never exert unbounded memory pressure.
    pub queue_capacity: usize,
    /// Publish a fresh snapshot after this many newly-applied log entries
    /// (the "epoch" size).
    pub refresh_every: usize,
    /// Also publish a fresh snapshot when there are pending entries and this
    /// much time has passed since the last publication, so a trickle of
    /// ingests still becomes visible promptly.
    pub refresh_interval: Duration,
    /// Maximum number of entries drained from the queue per worker wake-up.
    pub ingest_batch: usize,
    /// Retain at most this many queries in the live log; the oldest entries
    /// are evicted (and removed from the QFG incrementally) beyond it.
    /// `None` keeps the log unbounded.
    pub max_log_entries: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            refresh_every: 64,
            refresh_interval: Duration::from_millis(250),
            ingest_batch: 128,
            max_log_entries: None,
        }
    }
}

impl ServiceConfig {
    /// Set the ingestion queue capacity (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the snapshot refresh epoch (clamped to ≥ 1).
    pub fn with_refresh_every(mut self, every: usize) -> Self {
        self.refresh_every = every.max(1);
        self
    }

    /// Set the time-based refresh interval.
    pub fn with_refresh_interval(mut self, interval: Duration) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Bound the live log to `n` entries (eviction beyond it).
    pub fn with_max_log_entries(mut self, n: usize) -> Self {
        self.max_log_entries = Some(n.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp() {
        let c = ServiceConfig::default()
            .with_queue_capacity(0)
            .with_refresh_every(0)
            .with_max_log_entries(0);
        assert_eq!(c.queue_capacity, 1);
        assert_eq!(c.refresh_every, 1);
        assert_eq!(c.max_log_entries, Some(1));
    }
}
