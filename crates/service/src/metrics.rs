//! Service observability: counters and a latency histogram, exported as a
//! plain struct so callers and benches can consume them without pulling in a
//! metrics framework.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended).
const BUCKETS: usize = 40;

/// Lock-free service counters, updated by translation and ingestion paths.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    translations: AtomicU64,
    empty_translations: AtomicU64,
    search_tuples_scored: AtomicU64,
    search_tuples_pruned: AtomicU64,
    search_bound_cutoffs: AtomicU64,
    search_budget_exhausted: AtomicU64,
    ingest_submitted: AtomicU64,
    ingest_rejected: AtomicU64,
    ingest_applied: AtomicU64,
    ingest_parse_errors: AtomicU64,
    log_skipped_statements: AtomicU64,
    evictions: AtomicU64,
    snapshot_swaps: AtomicU64,
    feedback_accepted: AtomicU64,
    wal_appended: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_replayed: AtomicU64,
    wal_segments_gc: AtomicU64,
    wal_io_errors: AtomicU64,
    wal_truncated_bytes: AtomicU64,
    latency_buckets: LatencyHistogram,
}

#[derive(Debug)]
struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q`.
    fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Upper bound of bucket i is 2^i µs (bucket 0 is < 1 µs).
                return 1u64 << i.min(63);
            }
        }
        1u64 << (BUCKETS - 1).min(63)
    }
}

impl ServiceMetrics {
    pub(crate) fn record_translation(&self, latency: Duration, produced_results: bool) {
        self.translations.fetch_add(1, Ordering::Relaxed);
        if !produced_results {
            self.empty_translations.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_buckets.record(latency);
    }

    pub(crate) fn record_search(&self, stats: &templar_core::SearchStats) {
        self.search_tuples_scored
            .fetch_add(stats.tuples_scored, Ordering::Relaxed);
        self.search_tuples_pruned
            .fetch_add(stats.tuples_pruned, Ordering::Relaxed);
        self.search_bound_cutoffs
            .fetch_add(stats.bound_cutoffs, Ordering::Relaxed);
        if stats.budget_exhausted {
            self.search_budget_exhausted.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_submitted(&self) {
        self.ingest_submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.ingest_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_applied(&self, n: u64) {
        self.ingest_applied.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_parse_errors(&self, n: u64) {
        self.ingest_parse_errors.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_log_skipped(&self, n: u64) {
        self.log_skipped_statements.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_evictions(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_swap(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_feedback(&self) {
        self.feedback_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_appended(&self, n: u64) {
        self.wal_appended.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_fsync(&self) {
        self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_replayed(&self, n: u64) {
        self.wal_replayed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_segments_gc(&self, n: u64) {
        self.wal_segments_gc.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_io_error(&self) {
        self.wal_io_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_io_errors(&self, n: u64) {
        self.wal_io_errors.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_truncated(&self, bytes: u64) {
        self.wal_truncated_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn ingest_applied_total(&self) -> u64 {
        self.ingest_applied.load(Ordering::Relaxed)
            + self.ingest_parse_errors.load(Ordering::Relaxed)
    }

    pub(crate) fn ingest_accepted_total(&self) -> u64 {
        // Saturating: the two counters are independent relaxed atomics, so a
        // reader racing `submit_sql` can transiently observe the rejected
        // increment before the submitted one.
        self.ingest_submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.ingest_rejected.load(Ordering::Relaxed))
    }

    /// Export a point-in-time view.  QFG and cache figures are filled in by
    /// the service, which owns the current snapshot.
    pub(crate) fn export(&self) -> MetricsSnapshot {
        let translations = self.translations.load(Ordering::Relaxed);
        let mean_us = self
            .latency_buckets
            .total_us
            .load(Ordering::Relaxed)
            .checked_div(translations)
            .unwrap_or(0);
        MetricsSnapshot {
            translations_served: translations,
            empty_translations: self.empty_translations.load(Ordering::Relaxed),
            search_tuples_scored: self.search_tuples_scored.load(Ordering::Relaxed),
            search_tuples_pruned: self.search_tuples_pruned.load(Ordering::Relaxed),
            search_bound_cutoffs: self.search_bound_cutoffs.load(Ordering::Relaxed),
            search_budget_exhausted: self.search_budget_exhausted.load(Ordering::Relaxed),
            translate_p50_us: self.latency_buckets.quantile_us(0.50),
            translate_p99_us: self.latency_buckets.quantile_us(0.99),
            translate_mean_us: mean_us,
            ingest_submitted: self.ingest_submitted.load(Ordering::Relaxed),
            ingest_rejected: self.ingest_rejected.load(Ordering::Relaxed),
            ingest_applied: self.ingest_applied.load(Ordering::Relaxed),
            ingest_parse_errors: self.ingest_parse_errors.load(Ordering::Relaxed),
            log_skipped_statements: self.log_skipped_statements.load(Ordering::Relaxed),
            ingest_lag: self
                .ingest_accepted_total()
                .saturating_sub(self.ingest_applied_total()),
            log_evictions: self.evictions.load(Ordering::Relaxed),
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            feedback_accepted: self.feedback_accepted.load(Ordering::Relaxed),
            wal_appended: self.wal_appended.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
            wal_segments_gc: self.wal_segments_gc.load(Ordering::Relaxed),
            wal_io_errors: self.wal_io_errors.load(Ordering::Relaxed),
            wal_truncated_bytes: self.wal_truncated_bytes.load(Ordering::Relaxed),
            wal_applied_seq: 0,
            join_cache_hits: 0,
            join_cache_misses: 0,
            join_cache_evictions: 0,
            join_cache_entries: 0,
            qfg_fragments: 0,
            qfg_edges: 0,
            qfg_queries: 0,
            qfg_interned_fragments: 0,
            qfg_csr_edges: 0,
            qfg_pending_deltas: 0,
            qfg_compactions: 0,
        }
    }
}

/// A point-in-time view of the service's health, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Translations served since start.
    pub translations_served: u64,
    /// Translations that produced no SQL candidate.
    pub empty_translations: u64,
    /// Best-first configuration-search counters, summed over every
    /// translation served: complete configurations scored, configurations
    /// the admissible bound skipped without scoring, prefix subtrees cut
    /// by the bound, and how many requests exhausted their
    /// `search_budget` (returning a best-effort instead of provably exact
    /// ranking — also flagged per candidate in its explanation).
    pub search_tuples_scored: u64,
    pub search_tuples_pruned: u64,
    pub search_bound_cutoffs: u64,
    pub search_budget_exhausted: u64,
    /// Approximate translation latency quantiles (power-of-two bucket upper
    /// bounds) and exact mean, in microseconds.
    pub translate_p50_us: u64,
    pub translate_p99_us: u64,
    pub translate_mean_us: u64,
    /// Ingestion counters: accepted into the queue / rejected at capacity /
    /// applied to the QFG / failed to parse.
    pub ingest_submitted: u64,
    pub ingest_rejected: u64,
    pub ingest_applied: u64,
    pub ingest_parse_errors: u64,
    /// Statements skipped as unparsable while assembling a [`QueryLog`]
    /// from raw SQL text (`QueryLog::from_sql`) — e.g. the initial log a
    /// service was spawned from.  Kept separate from `ingest_parse_errors`
    /// (the live `submit_sql` path) so malformed bootstrap logs are
    /// observable instead of silently dropped.
    pub log_skipped_statements: u64,
    /// Entries accepted but not yet applied (queue + in-flight batch).
    pub ingest_lag: u64,
    /// Log entries evicted under `max_log_entries`.
    pub log_evictions: u64,
    /// Snapshots published since start.
    pub snapshot_swaps: u64,
    /// Accepted-SQL feedback entries received over the `Feedback` wire
    /// request (a subset of `ingest_submitted` — feedback rides the same
    /// durable ingest path).
    pub feedback_accepted: u64,
    /// Write-ahead journal counters (all 0 on a non-durable service):
    /// records appended / fsyncs issued / records replayed at recovery /
    /// segments garbage-collected below the snapshot watermark / append or
    /// fsync failures (entries *not* covered by the journal).
    pub wal_appended: u64,
    pub wal_fsyncs: u64,
    pub wal_replayed: u64,
    pub wal_segments_gc: u64,
    pub wal_io_errors: u64,
    /// Bytes cut off a torn journal tail at recovery — a non-zero value is
    /// the signature of actual (bounded, expected) data loss: one or more
    /// acknowledged-but-unsynced entries did not survive the crash.
    pub wal_truncated_bytes: u64,
    /// Sequence number of the last journal record applied to the master
    /// state — the watermark the next checkpoint will record.
    pub wal_applied_seq: u64,
    /// Join-cache statistics of the *current* snapshot (reset at swap):
    /// hits / misses / entries evicted under the capacity bound / resident
    /// entries.
    pub join_cache_hits: u64,
    pub join_cache_misses: u64,
    pub join_cache_evictions: u64,
    pub join_cache_entries: u64,
    /// Size of the current snapshot's Query Fragment Graph.
    pub qfg_fragments: u64,
    pub qfg_edges: u64,
    pub qfg_queries: u64,
    /// Columnar data-plane gauges of the current snapshot: interner table
    /// size (live + recyclable id slots), edges resident in the compacted
    /// CSR, pending delta-log pairs (0 on a published snapshot, which is
    /// compacted on construction), and the number of compactions the
    /// graph's lineage has undergone.
    pub qfg_interned_fragments: u64,
    pub qfg_csr_edges: u64,
    pub qfg_pending_deltas: u64,
    pub qfg_compactions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let m = ServiceMetrics::default();
        for us in [10u64, 20, 40, 80, 5000] {
            m.record_translation(Duration::from_micros(us), true);
        }
        let snap = m.export();
        assert_eq!(snap.translations_served, 5);
        assert!(snap.translate_p50_us <= snap.translate_p99_us);
        // p99 bucket upper bound must cover the 5 ms outlier.
        assert!(snap.translate_p99_us >= 5000);
        assert!(snap.translate_mean_us >= 10);
    }

    #[test]
    fn lag_is_submitted_minus_applied() {
        let m = ServiceMetrics::default();
        for _ in 0..5 {
            m.record_submitted();
        }
        m.record_rejected();
        m.record_applied(3);
        let snap = m.export();
        assert_eq!(snap.ingest_submitted, 5);
        assert_eq!(snap.ingest_lag, 1); // 5 submitted - 1 rejected - 3 applied
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = ServiceMetrics::default().export();
        assert_eq!(snap.translate_p50_us, 0);
        assert_eq!(snap.translate_p99_us, 0);
    }
}
