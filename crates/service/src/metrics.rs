//! Service observability: counters, end-to-end and per-stage latency
//! histograms, and a Prometheus text-format exposition — exported as plain
//! structs so callers and benches can consume them without pulling in a
//! metrics framework.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use templar_api::{HistogramBucket, StageLatencyReport};
use templar_core::trace::{RequestTrace, Stage, STAGE_COUNT};

/// Number of power-of-two latency buckets.  Bucket 0 holds only 0 µs;
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i)` microseconds; the last bucket is
/// open-ended.
const BUCKETS: usize = 40;

/// The service's write-availability state machine.
///
/// A service is born `Healthy`.  When journaling faults exhaust the bounded
/// in-line retry (`ServiceConfig::journal_retry_attempts`), the ingestion
/// worker moves it to `Degraded`: translations, metrics, traces, and
/// Prometheus keep serving from the current immutable snapshot, but
/// `Ingest`/`Feedback` are refused with a typed `Degraded` error instead of
/// queueing into a wedged journal.  The worker keeps probing the journal
/// with backoff; the first successful sync replays the staged tail and
/// returns the service to `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Full read/write service.
    Healthy,
    /// Read-only: the durable journal is failing; writes are refused.
    Degraded,
}

impl HealthState {
    /// Prometheus gauge encoding: 0 = healthy, 1 = degraded.
    pub fn as_gauge(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
        }
    }

    fn from_gauge(v: u64) -> Self {
        if v == 0 {
            HealthState::Healthy
        } else {
            HealthState::Degraded
        }
    }

    /// Stable lowercase name, as carried on the wire by `HealthReport`.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
        }
    }
}

/// Lock-free service counters, updated by translation and ingestion paths.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    translations: AtomicU64,
    empty_translations: AtomicU64,
    search_tuples_scored: AtomicU64,
    search_tuples_pruned: AtomicU64,
    search_bound_cutoffs: AtomicU64,
    search_budget_exhausted: AtomicU64,
    ingest_submitted: AtomicU64,
    ingest_rejected: AtomicU64,
    ingest_applied: AtomicU64,
    ingest_parse_errors: AtomicU64,
    log_skipped_statements: AtomicU64,
    evictions: AtomicU64,
    snapshot_swaps: AtomicU64,
    feedback_accepted: AtomicU64,
    wal_appended: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_replayed: AtomicU64,
    wal_segments_gc: AtomicU64,
    wal_io_errors: AtomicU64,
    /// First OS errno of the current (or most recent) journal failure
    /// episode, stored as `errno + 1` so 0 means "none recorded".
    wal_last_errno: AtomicU64,
    /// 0 = healthy, 1 = degraded ([`HealthState`] gauge encoding).
    health_state: AtomicU64,
    degraded_entries: AtomicU64,
    journal_retries: AtomicU64,
    journal_heals: AtomicU64,
    wal_truncated_bytes: AtomicU64,
    recovery_peak_batch_bytes: AtomicU64,
    snapshot_body_bytes: AtomicU64,
    admission_tenant_shed: AtomicU64,
    admission_global_shed: AtomicU64,
    translation_cache_hits: AtomicU64,
    translation_cache_misses: AtomicU64,
    translation_cache_evictions: AtomicU64,
    translation_cache_invalidations: AtomicU64,
    latency_buckets: LatencyHistogram,
    stage_latency: [LatencyHistogram; STAGE_COUNT],
}

#[derive(Debug)]
struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation.  0 µs lands in bucket 0; `us ≥ 1` lands in
    /// bucket `floor(log2(us)) + 1`, i.e. bucket `i` covers `[2^(i-1), 2^i)`.
    fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn sum_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    fn mean_us(&self) -> u64 {
        self.sum_us().checked_div(self.count()).unwrap_or(0)
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q`.
    fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Upper bound of bucket i is 2^i µs (bucket i covers
                // [2^(i-1), 2^i); bucket 0 is exactly 0 µs and still
                // reports 2^0 = 1 as its conservative bound).
                return 1u64 << i.min(63);
            }
        }
        1u64 << (BUCKETS - 1).min(63)
    }

    /// Export cumulative buckets with Prometheus `le` semantics: entry
    /// `le_us = 2^i − 1` counts every observation strictly below `2^i` µs
    /// (exact for integer microseconds), trailing empty buckets are
    /// trimmed, and the final `+Inf` entry (`le_us == u64::MAX`) always
    /// carries the total count.
    fn cumulative_buckets(&self) -> Vec<HistogramBucket> {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let last_nonzero = counts.iter().rposition(|&c| c > 0);
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        if let Some(last) = last_nonzero {
            // The open-ended final bucket has no finite bound — it is
            // covered by +Inf below.
            for (i, &count) in counts.iter().enumerate().take(last.min(BUCKETS - 2) + 1) {
                cumulative += count;
                buckets.push(HistogramBucket {
                    le_us: (1u64 << i.min(63)) - 1,
                    count: cumulative,
                });
            }
        }
        buckets.push(HistogramBucket {
            le_us: u64::MAX,
            count: counts.iter().sum(),
        });
        buckets
    }

    /// Project the histogram into its wire report for one pipeline stage.
    fn stage_report(&self, stage: Stage) -> StageLatencyReport {
        StageLatencyReport {
            stage: stage.name().to_string(),
            count: self.count(),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            mean_us: self.mean_us(),
            sum_us: self.sum_us(),
            buckets: self.cumulative_buckets(),
        }
    }
}

impl ServiceMetrics {
    pub(crate) fn record_translation(&self, latency: Duration, produced_results: bool) {
        self.translations.fetch_add(1, Ordering::Relaxed);
        if !produced_results {
            self.empty_translations.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_buckets.record(latency);
    }

    pub(crate) fn record_search(&self, stats: &templar_core::SearchStats) {
        self.search_tuples_scored
            .fetch_add(stats.tuples_scored, Ordering::Relaxed);
        self.search_tuples_pruned
            .fetch_add(stats.tuples_pruned, Ordering::Relaxed);
        self.search_bound_cutoffs
            .fetch_add(stats.bound_cutoffs, Ordering::Relaxed);
        if stats.budget_exhausted {
            self.search_budget_exhausted.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_submitted(&self) {
        self.ingest_submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.ingest_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_applied(&self, n: u64) {
        self.ingest_applied.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_parse_errors(&self, n: u64) {
        self.ingest_parse_errors.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_log_skipped(&self, n: u64) {
        self.log_skipped_statements.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_evictions(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_swap(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_feedback(&self) {
        self.feedback_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_appended(&self, n: u64) {
        self.wal_appended.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_fsync(&self) {
        self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_replayed(&self, n: u64) {
        self.wal_replayed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_segments_gc(&self, n: u64) {
        self.wal_segments_gc.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_io_errors(&self, n: u64) {
        self.wal_io_errors.fetch_add(n, Ordering::Relaxed);
    }

    /// Remember the first OS errno of a journal failure episode so
    /// operators can tell `ENOSPC` from `EIO` in the metrics report.
    pub(crate) fn record_wal_errno(&self, errno: i32) {
        self.wal_last_errno
            .store(errno.unsigned_abs() as u64 + 1, Ordering::Relaxed);
    }

    /// Current write-availability state.
    pub fn health_state(&self) -> HealthState {
        HealthState::from_gauge(self.health_state.load(Ordering::Relaxed))
    }

    pub(crate) fn is_degraded(&self) -> bool {
        self.health_state() == HealthState::Degraded
    }

    /// Enter degraded read-only mode (idempotent).
    pub(crate) fn enter_degraded(&self) {
        self.health_state.store(1, Ordering::Relaxed);
    }

    /// One successful journal heal: the probe's sync went through, the
    /// staged tail is durable again, and writes are restored.
    pub(crate) fn record_journal_heal(&self) {
        self.journal_heals.fetch_add(1, Ordering::Relaxed);
        self.health_state.store(0, Ordering::Relaxed);
    }

    /// One in-line journal sync retry (after the first failed attempt).
    pub(crate) fn record_journal_retry(&self) {
        self.journal_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// One `Ingest`/`Feedback` entry refused because the service is
    /// degraded.
    pub(crate) fn record_degraded_refusal(&self) {
        self.degraded_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// One request shed because the tenant's in-flight quota
    /// (`ServiceConfig::max_inflight`) was full.
    pub(crate) fn record_tenant_shed(&self) {
        self.admission_tenant_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// One request shed because the serving plane's *global* in-flight cap
    /// was full, attributed to the tenant the request targeted.
    pub(crate) fn record_global_shed(&self) {
        self.admission_global_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// One translation answered from the epoch-keyed translation cache.
    pub(crate) fn record_translation_cache_hit(&self) {
        self.translation_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One translation that had to compute (and, on success, seeded the
    /// translation cache).  Bypassed requests record neither hit nor miss.
    pub(crate) fn record_translation_cache_miss(&self) {
        self.translation_cache_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Entries dropped from the translation cache at its capacity bound.
    pub(crate) fn record_translation_cache_evictions(&self, n: u64) {
        self.translation_cache_evictions
            .fetch_add(n, Ordering::Relaxed);
    }

    /// One wholesale translation-cache invalidation (snapshot publish).
    pub(crate) fn record_translation_cache_invalidation(&self) {
        self.translation_cache_invalidations
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one finished request's per-stage breakdown into the stage
    /// latency histograms: one observation per stage that ran (the stage's
    /// accumulated duration within the request).
    pub(crate) fn record_stage_latencies(&self, trace: &RequestTrace) {
        for stage in Stage::ALL {
            let nanos = trace.stage_nanos(stage);
            let ran = trace
                .stages
                .iter()
                .find(|s| s.stage == stage.name())
                .is_some_and(|s| s.calls > 0);
            if ran {
                self.stage_latency[stage as usize].record_us(nanos / 1_000);
            }
        }
    }

    pub(crate) fn record_wal_truncated(&self, bytes: u64) {
        self.wal_truncated_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Largest decoded WAL batch the last recovery materialized — recovery's
    /// bounded-memory high-water mark.
    pub(crate) fn record_recovery_peak_batch_bytes(&self, bytes: u64) {
        self.recovery_peak_batch_bytes
            .store(bytes, Ordering::Relaxed);
    }

    /// On-disk size of the last snapshot written or recovered from.
    pub(crate) fn record_snapshot_body_bytes(&self, bytes: u64) {
        self.snapshot_body_bytes.store(bytes, Ordering::Relaxed);
    }

    pub(crate) fn ingest_applied_total(&self) -> u64 {
        self.ingest_applied.load(Ordering::Relaxed)
            + self.ingest_parse_errors.load(Ordering::Relaxed)
    }

    pub(crate) fn ingest_accepted_total(&self) -> u64 {
        // Saturating: the two counters are independent relaxed atomics, so a
        // reader racing `submit_sql` can transiently observe the rejected
        // increment before the submitted one.
        self.ingest_submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.ingest_rejected.load(Ordering::Relaxed))
    }

    /// Export a point-in-time view.  QFG and cache figures are filled in by
    /// the service, which owns the current snapshot.
    pub(crate) fn export(&self) -> MetricsSnapshot {
        let translations = self.translations.load(Ordering::Relaxed);
        let mean_us = self
            .latency_buckets
            .total_us
            .load(Ordering::Relaxed)
            .checked_div(translations)
            .unwrap_or(0);
        let stage_latencies = Stage::ALL
            .iter()
            .map(|&stage| self.stage_latency[stage as usize].stage_report(stage))
            .collect();
        MetricsSnapshot {
            translations_served: translations,
            empty_translations: self.empty_translations.load(Ordering::Relaxed),
            search_tuples_scored: self.search_tuples_scored.load(Ordering::Relaxed),
            search_tuples_pruned: self.search_tuples_pruned.load(Ordering::Relaxed),
            search_bound_cutoffs: self.search_bound_cutoffs.load(Ordering::Relaxed),
            search_budget_exhausted: self.search_budget_exhausted.load(Ordering::Relaxed),
            translate_p50_us: self.latency_buckets.quantile_us(0.50),
            translate_p99_us: self.latency_buckets.quantile_us(0.99),
            translate_mean_us: mean_us,
            translate_sum_us: self.latency_buckets.sum_us(),
            translate_buckets: self.latency_buckets.cumulative_buckets(),
            stage_latencies,
            ingest_submitted: self.ingest_submitted.load(Ordering::Relaxed),
            ingest_rejected: self.ingest_rejected.load(Ordering::Relaxed),
            ingest_applied: self.ingest_applied.load(Ordering::Relaxed),
            ingest_parse_errors: self.ingest_parse_errors.load(Ordering::Relaxed),
            log_skipped_statements: self.log_skipped_statements.load(Ordering::Relaxed),
            ingest_lag: self
                .ingest_accepted_total()
                .saturating_sub(self.ingest_applied_total()),
            log_evictions: self.evictions.load(Ordering::Relaxed),
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            feedback_accepted: self.feedback_accepted.load(Ordering::Relaxed),
            wal_appended: self.wal_appended.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
            wal_segments_gc: self.wal_segments_gc.load(Ordering::Relaxed),
            wal_io_errors: self.wal_io_errors.load(Ordering::Relaxed),
            wal_last_errno: self.wal_last_errno.load(Ordering::Relaxed),
            health_state: self.health_state.load(Ordering::Relaxed),
            degraded_entries_total: self.degraded_entries.load(Ordering::Relaxed),
            journal_retries_total: self.journal_retries.load(Ordering::Relaxed),
            journal_heals_total: self.journal_heals.load(Ordering::Relaxed),
            wal_truncated_bytes: self.wal_truncated_bytes.load(Ordering::Relaxed),
            recovery_peak_batch_bytes: self.recovery_peak_batch_bytes.load(Ordering::Relaxed),
            snapshot_body_bytes: self.snapshot_body_bytes.load(Ordering::Relaxed),
            admission_tenant_shed: self.admission_tenant_shed.load(Ordering::Relaxed),
            admission_global_shed: self.admission_global_shed.load(Ordering::Relaxed),
            translation_cache_hits: self.translation_cache_hits.load(Ordering::Relaxed),
            translation_cache_misses: self.translation_cache_misses.load(Ordering::Relaxed),
            translation_cache_evictions: self.translation_cache_evictions.load(Ordering::Relaxed),
            translation_cache_invalidations: self
                .translation_cache_invalidations
                .load(Ordering::Relaxed),
            translation_cache_entries: 0,
            word_memo_hits: 0,
            word_memo_misses: 0,
            phrase_memo_hits: 0,
            phrase_memo_misses: 0,
            wal_applied_seq: 0,
            join_cache_hits: 0,
            join_cache_misses: 0,
            join_cache_evictions: 0,
            join_cache_entries: 0,
            qfg_fragments: 0,
            qfg_edges: 0,
            qfg_queries: 0,
            qfg_interned_fragments: 0,
            qfg_csr_edges: 0,
            qfg_pending_deltas: 0,
            qfg_compactions: 0,
            qfg_delta_runs: 0,
            qfg_run_merges: 0,
        }
    }
}

/// A point-in-time view of the service's health, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Translations served since start.
    pub translations_served: u64,
    /// Translations that produced no SQL candidate.
    pub empty_translations: u64,
    /// Best-first configuration-search counters, summed over every
    /// translation served: complete configurations scored, configurations
    /// the admissible bound skipped without scoring, prefix subtrees cut
    /// by the bound, and how many requests exhausted their
    /// `search_budget` (returning a best-effort instead of provably exact
    /// ranking — also flagged per candidate in its explanation).
    pub search_tuples_scored: u64,
    pub search_tuples_pruned: u64,
    pub search_bound_cutoffs: u64,
    pub search_budget_exhausted: u64,
    /// Approximate translation latency quantiles (power-of-two bucket upper
    /// bounds) and exact mean/sum, in microseconds.
    pub translate_p50_us: u64,
    pub translate_p99_us: u64,
    pub translate_mean_us: u64,
    pub translate_sum_us: u64,
    /// Cumulative end-to-end latency buckets (Prometheus `le` semantics;
    /// final entry is `+Inf`).
    pub translate_buckets: Vec<HistogramBucket>,
    /// Per-stage latency distributions, one entry per pipeline stage in
    /// execution order — populated by the serving layer, which traces every
    /// request it serves.
    pub stage_latencies: Vec<StageLatencyReport>,
    /// Ingestion counters: accepted into the queue / rejected at capacity /
    /// applied to the QFG / failed to parse.
    pub ingest_submitted: u64,
    pub ingest_rejected: u64,
    pub ingest_applied: u64,
    pub ingest_parse_errors: u64,
    /// Statements skipped as unparsable while assembling a [`QueryLog`]
    /// from raw SQL text (`QueryLog::from_sql`) — e.g. the initial log a
    /// service was spawned from.  Kept separate from `ingest_parse_errors`
    /// (the live `submit_sql` path) so malformed bootstrap logs are
    /// observable instead of silently dropped.
    pub log_skipped_statements: u64,
    /// Entries accepted but not yet applied (queue + in-flight batch).
    pub ingest_lag: u64,
    /// Log entries evicted under `max_log_entries`.
    pub log_evictions: u64,
    /// Snapshots published since start.
    pub snapshot_swaps: u64,
    /// Accepted-SQL feedback entries received over the `Feedback` wire
    /// request (a subset of `ingest_submitted` — feedback rides the same
    /// durable ingest path).
    pub feedback_accepted: u64,
    /// Write-ahead journal counters (all 0 on a non-durable service):
    /// records appended / fsyncs issued / records replayed at recovery /
    /// segments garbage-collected below the snapshot watermark / append or
    /// fsync failures (entries *not* covered by the journal).
    pub wal_appended: u64,
    pub wal_fsyncs: u64,
    pub wal_replayed: u64,
    pub wal_segments_gc: u64,
    pub wal_io_errors: u64,
    /// First OS errno of the current (or most recent) journal failure
    /// episode, encoded as `errno + 1` (0 = none recorded) — lets
    /// operators tell `ENOSPC` (28) from `EIO` (5) without log access.
    pub wal_last_errno: u64,
    /// Write-availability state: 0 = healthy, 1 = degraded read-only
    /// ([`HealthState`] gauge encoding).
    pub health_state: u64,
    /// `Ingest`/`Feedback` entries refused while degraded.
    pub degraded_entries_total: u64,
    /// In-line journal sync retries (attempts after the first failure).
    pub journal_retries_total: u64,
    /// Successful journal heals: degraded episodes that ended with the
    /// staged tail replayed and writes restored.
    pub journal_heals_total: u64,
    /// Bytes cut off a torn journal tail at recovery — a non-zero value is
    /// the signature of actual (bounded, expected) data loss: one or more
    /// acknowledged-but-unsynced entries did not survive the crash.
    pub wal_truncated_bytes: u64,
    /// Largest decoded WAL batch the last recovery materialized — the
    /// bounded-memory replay's high-water mark, at most
    /// `max(ServiceConfig::recovery_batch_bytes, largest single record)`.
    /// 0 until a durable service recovers.
    pub recovery_peak_batch_bytes: u64,
    /// On-disk size of the last snapshot written (or recovered from), in
    /// bytes — the sectioned v3 body including every frame header and CRC.
    pub snapshot_body_bytes: u64,
    /// Admission-control sheds: requests rejected with `Backpressure`
    /// before any work was queued, split by which limit fired — the
    /// tenant's own in-flight quota (`ServiceConfig::max_inflight`) versus
    /// the serving plane's global in-flight cap (global sheds are
    /// attributed to the tenant whose request was turned away).
    pub admission_tenant_shed: u64,
    pub admission_global_shed: u64,
    /// Sequence number of the last journal record applied to the master
    /// state — the watermark the next checkpoint will record.
    pub wal_applied_seq: u64,
    /// Join-cache statistics of the *current* snapshot (reset at swap):
    /// hits / misses / entries evicted under the capacity bound / resident
    /// entries.
    pub join_cache_hits: u64,
    pub join_cache_misses: u64,
    pub join_cache_evictions: u64,
    pub join_cache_entries: u64,
    /// Size of the current snapshot's Query Fragment Graph.
    pub qfg_fragments: u64,
    pub qfg_edges: u64,
    pub qfg_queries: u64,
    /// Columnar data-plane gauges of the current snapshot: interner table
    /// size (live + recyclable id slots), edges resident in the compacted
    /// CSR, pending delta-log pairs (0 on a published snapshot, which is
    /// compacted on construction), and the number of compactions the
    /// graph's lineage has undergone.
    pub qfg_interned_fragments: u64,
    pub qfg_csr_edges: u64,
    pub qfg_pending_deltas: u64,
    pub qfg_compactions: u64,
    /// Tiered-compaction gauges of the master graph: sorted delta runs
    /// currently resident (tiers awaiting the next publish fold) and the
    /// cumulative count of geometric run merges the lineage has performed.
    /// Filled in by the service, which owns the master state.
    pub qfg_delta_runs: u64,
    pub qfg_run_merges: u64,
    /// Epoch-keyed translation-cache counters: requests answered from the
    /// cache / requests that computed (and seeded it) / entries dropped at
    /// the capacity bound / wholesale invalidations on snapshot publish.
    /// Bypassed requests touch neither hits nor misses.  The entry gauge is
    /// filled in by the service, which owns the cache.
    pub translation_cache_hits: u64,
    pub translation_cache_misses: u64,
    pub translation_cache_evictions: u64,
    pub translation_cache_invalidations: u64,
    pub translation_cache_entries: u64,
    /// Similarity-model memo counters sampled from the current snapshot's
    /// `WordModel` (reset at swap, like the join-cache figures): single-word
    /// and phrase vector cache hits/misses.  Filled in by the service.
    pub word_memo_hits: u64,
    pub word_memo_misses: u64,
    pub phrase_memo_hits: u64,
    pub phrase_memo_misses: u64,
}

impl MetricsSnapshot {
    /// This snapshot as a Prometheus text-format exposition for one tenant.
    pub fn to_prometheus_text(&self, tenant: &str) -> String {
        prometheus_text(&[(tenant, self)])
    }
}

/// Every numeric family of the exposition: `(metric name, TYPE, HELP,
/// extractor)`.  Counters monotonically accumulate since service start;
/// gauges are point-in-time.
type FieldGetter = fn(&MetricsSnapshot) -> u64;
const PROM_FAMILIES: &[(&str, &str, &str, FieldGetter)] = &[
    (
        "templar_translations_total",
        "counter",
        "Translations served since start.",
        |s| s.translations_served,
    ),
    (
        "templar_empty_translations_total",
        "counter",
        "Translations that produced no SQL candidate.",
        |s| s.empty_translations,
    ),
    (
        "templar_search_tuples_scored_total",
        "counter",
        "Configurations fully scored by the best-first search.",
        |s| s.search_tuples_scored,
    ),
    (
        "templar_search_tuples_pruned_total",
        "counter",
        "Configurations skipped by the admissible bound without scoring.",
        |s| s.search_tuples_pruned,
    ),
    (
        "templar_search_bound_cutoffs_total",
        "counter",
        "Prefix subtrees cut by the admissible bound.",
        |s| s.search_bound_cutoffs,
    ),
    (
        "templar_search_budget_exhausted_total",
        "counter",
        "Requests whose configuration search ran out of budget.",
        |s| s.search_budget_exhausted,
    ),
    (
        "templar_ingest_submitted_total",
        "counter",
        "SQL entries accepted into the ingestion queue.",
        |s| s.ingest_submitted,
    ),
    (
        "templar_ingest_rejected_total",
        "counter",
        "SQL entries rejected at queue capacity.",
        |s| s.ingest_rejected,
    ),
    (
        "templar_ingest_applied_total",
        "counter",
        "SQL entries applied to the Query Fragment Graph.",
        |s| s.ingest_applied,
    ),
    (
        "templar_ingest_parse_errors_total",
        "counter",
        "SQL entries that failed to parse on the live ingest path.",
        |s| s.ingest_parse_errors,
    ),
    (
        "templar_log_skipped_statements_total",
        "counter",
        "Statements skipped as unparsable while assembling the bootstrap log.",
        |s| s.log_skipped_statements,
    ),
    (
        "templar_log_evictions_total",
        "counter",
        "Log entries evicted under the retention bound.",
        |s| s.log_evictions,
    ),
    (
        "templar_snapshot_swaps_total",
        "counter",
        "Snapshots published since start.",
        |s| s.snapshot_swaps,
    ),
    (
        "templar_feedback_accepted_total",
        "counter",
        "Accepted-SQL feedback entries received.",
        |s| s.feedback_accepted,
    ),
    (
        "templar_wal_appended_total",
        "counter",
        "Write-ahead journal records appended.",
        |s| s.wal_appended,
    ),
    (
        "templar_wal_fsyncs_total",
        "counter",
        "Write-ahead journal fsyncs issued.",
        |s| s.wal_fsyncs,
    ),
    (
        "templar_wal_replayed_total",
        "counter",
        "Journal records replayed at recovery.",
        |s| s.wal_replayed,
    ),
    (
        "templar_wal_segments_gc_total",
        "counter",
        "Journal segments garbage-collected.",
        |s| s.wal_segments_gc,
    ),
    (
        "templar_wal_io_errors_total",
        "counter",
        "Journal filesystem failures absorbed.",
        |s| s.wal_io_errors,
    ),
    (
        "templar_wal_truncated_bytes_total",
        "counter",
        "Bytes cut off a torn journal tail at recovery.",
        |s| s.wal_truncated_bytes,
    ),
    (
        "templar_wal_last_errno",
        "gauge",
        "First OS errno of the last journal failure episode, plus one (0 = none).",
        |s| s.wal_last_errno,
    ),
    (
        "templar_health_state",
        "gauge",
        "Write-availability state: 0 = healthy, 1 = degraded read-only.",
        |s| s.health_state,
    ),
    (
        "templar_degraded_entries_total",
        "counter",
        "Ingest/feedback entries refused while degraded.",
        |s| s.degraded_entries_total,
    ),
    (
        "templar_journal_retries_total",
        "counter",
        "In-line journal sync retries after a failure.",
        |s| s.journal_retries_total,
    ),
    (
        "templar_journal_heals_total",
        "counter",
        "Degraded episodes healed with the staged tail replayed.",
        |s| s.journal_heals_total,
    ),
    (
        "templar_admission_tenant_shed_total",
        "counter",
        "Requests shed at the tenant's in-flight quota.",
        |s| s.admission_tenant_shed,
    ),
    (
        "templar_admission_global_shed_total",
        "counter",
        "Requests shed at the serving plane's global in-flight cap.",
        |s| s.admission_global_shed,
    ),
    (
        "templar_ingest_lag",
        "gauge",
        "Entries accepted but not yet applied.",
        |s| s.ingest_lag,
    ),
    (
        "templar_wal_applied_seq",
        "gauge",
        "Sequence number of the last journal record applied.",
        |s| s.wal_applied_seq,
    ),
    (
        "templar_join_cache_hits_total",
        "counter",
        "Join-cache hits of the current snapshot.",
        |s| s.join_cache_hits,
    ),
    (
        "templar_join_cache_misses_total",
        "counter",
        "Join-cache misses of the current snapshot.",
        |s| s.join_cache_misses,
    ),
    (
        "templar_join_cache_evictions_total",
        "counter",
        "Join-cache evictions of the current snapshot.",
        |s| s.join_cache_evictions,
    ),
    (
        "templar_join_cache_entries",
        "gauge",
        "Resident join-cache entries.",
        |s| s.join_cache_entries,
    ),
    (
        "templar_qfg_fragments",
        "gauge",
        "Live query fragments in the current snapshot's QFG.",
        |s| s.qfg_fragments,
    ),
    (
        "templar_qfg_edges",
        "gauge",
        "Co-occurrence edges in the current snapshot's QFG.",
        |s| s.qfg_edges,
    ),
    (
        "templar_qfg_queries",
        "gauge",
        "Log queries folded into the current snapshot's QFG.",
        |s| s.qfg_queries,
    ),
    (
        "templar_qfg_interned_fragments",
        "gauge",
        "Interner table size of the columnar data plane.",
        |s| s.qfg_interned_fragments,
    ),
    (
        "templar_qfg_csr_edges",
        "gauge",
        "Edges resident in the compacted CSR.",
        |s| s.qfg_csr_edges,
    ),
    (
        "templar_qfg_pending_deltas",
        "gauge",
        "Pending delta-log pairs awaiting compaction.",
        |s| s.qfg_pending_deltas,
    ),
    (
        "templar_qfg_compactions_total",
        "counter",
        "Compactions the QFG lineage has undergone.",
        |s| s.qfg_compactions,
    ),
    (
        "templar_qfg_delta_runs",
        "gauge",
        "Sorted delta runs resident in the master graph's tiered compactor.",
        |s| s.qfg_delta_runs,
    ),
    (
        "templar_qfg_run_merges_total",
        "counter",
        "Geometric delta-run merges the QFG lineage has performed.",
        |s| s.qfg_run_merges,
    ),
    (
        "templar_recovery_peak_batch_bytes",
        "gauge",
        "Largest decoded WAL batch the last recovery materialized.",
        |s| s.recovery_peak_batch_bytes,
    ),
    (
        "templar_snapshot_body_bytes",
        "gauge",
        "On-disk size of the last snapshot written or recovered from.",
        |s| s.snapshot_body_bytes,
    ),
    (
        "templar_translation_cache_hits_total",
        "counter",
        "Translations answered from the epoch-keyed translation cache.",
        |s| s.translation_cache_hits,
    ),
    (
        "templar_translation_cache_misses_total",
        "counter",
        "Translations computed because the cache had no entry.",
        |s| s.translation_cache_misses,
    ),
    (
        "templar_translation_cache_evictions_total",
        "counter",
        "Translation-cache entries dropped at the capacity bound.",
        |s| s.translation_cache_evictions,
    ),
    (
        "templar_translation_cache_invalidations_total",
        "counter",
        "Wholesale translation-cache invalidations on snapshot publish.",
        |s| s.translation_cache_invalidations,
    ),
    (
        "templar_translation_cache_entries",
        "gauge",
        "Resident translation-cache entries.",
        |s| s.translation_cache_entries,
    ),
    (
        "templar_word_memo_hits_total",
        "counter",
        "Word-vector memo hits of the current snapshot's similarity model.",
        |s| s.word_memo_hits,
    ),
    (
        "templar_word_memo_misses_total",
        "counter",
        "Word-vector memo misses of the current snapshot's similarity model.",
        |s| s.word_memo_misses,
    ),
    (
        "templar_phrase_memo_hits_total",
        "counter",
        "Phrase-vector memo hits of the current snapshot's similarity model.",
        |s| s.phrase_memo_hits,
    ),
    (
        "templar_phrase_memo_misses_total",
        "counter",
        "Phrase-vector memo misses of the current snapshot's similarity model.",
        |s| s.phrase_memo_misses,
    ),
];

fn prom_bucket_lines(
    out: &mut String,
    family: &str,
    labels: &str,
    buckets: &[HistogramBucket],
    sum_us: u64,
    count: u64,
) {
    for bucket in buckets {
        let le = if bucket.le_us == u64::MAX {
            "+Inf".to_string()
        } else {
            bucket.le_us.to_string()
        };
        out.push_str(&format!(
            "{family}_bucket{{{labels}le=\"{le}\"}} {}\n",
            bucket.count
        ));
    }
    out.push_str(&format!(
        "{family}_sum{{{labels_trimmed}}} {sum_us}\n",
        labels_trimmed = labels.trim_end_matches(',')
    ));
    out.push_str(&format!(
        "{family}_count{{{labels_trimmed}}} {count}\n",
        labels_trimmed = labels.trim_end_matches(',')
    ));
}

/// Assemble a Prometheus text-format exposition over any number of tenants.
/// Each metric family's `# HELP` / `# TYPE` header appears exactly once,
/// with one sample per tenant under a `tenant` label — the format's
/// uniqueness rule, which is why expositions are assembled here rather than
/// concatenated per tenant.
pub fn prometheus_text(tenants: &[(&str, &MetricsSnapshot)]) -> String {
    let mut out = String::new();
    for (name, kind, help, get) in PROM_FAMILIES {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for (tenant, snapshot) in tenants {
            out.push_str(&format!(
                "{name}{{tenant=\"{tenant}\"}} {}\n",
                get(snapshot)
            ));
        }
    }
    let family = "templar_translate_latency_microseconds";
    out.push_str(&format!(
        "# HELP {family} End-to-end translation latency.\n# TYPE {family} histogram\n"
    ));
    for (tenant, snapshot) in tenants {
        prom_bucket_lines(
            &mut out,
            family,
            &format!("tenant=\"{tenant}\","),
            &snapshot.translate_buckets,
            snapshot.translate_sum_us,
            snapshot.translations_served,
        );
    }
    let family = "templar_stage_latency_microseconds";
    out.push_str(&format!(
        "# HELP {family} Per-stage translation latency, labelled by pipeline stage.\n# TYPE {family} histogram\n"
    ));
    for (tenant, snapshot) in tenants {
        for stage in &snapshot.stage_latencies {
            prom_bucket_lines(
                &mut out,
                family,
                &format!("tenant=\"{tenant}\",stage=\"{}\",", stage.stage),
                &stage.buckets,
                stage.sum_us,
                stage.count,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let m = ServiceMetrics::default();
        for us in [10u64, 20, 40, 80, 5000] {
            m.record_translation(Duration::from_micros(us), true);
        }
        let snap = m.export();
        assert_eq!(snap.translations_served, 5);
        assert!(snap.translate_p50_us <= snap.translate_p99_us);
        // p99 bucket upper bound must cover the 5 ms outlier.
        assert!(snap.translate_p99_us >= 5000);
        assert!(snap.translate_mean_us >= 10);
    }

    #[test]
    fn lag_is_submitted_minus_applied() {
        let m = ServiceMetrics::default();
        for _ in 0..5 {
            m.record_submitted();
        }
        m.record_rejected();
        m.record_applied(3);
        let snap = m.export();
        assert_eq!(snap.ingest_submitted, 5);
        assert_eq!(snap.ingest_lag, 1); // 5 submitted - 1 rejected - 3 applied
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = ServiceMetrics::default().export();
        assert_eq!(snap.translate_p50_us, 0);
        assert_eq!(snap.translate_p99_us, 0);
        assert_eq!(snap.translate_sum_us, 0);
        // Even an empty histogram exposes its +Inf bucket.
        assert_eq!(
            snap.translate_buckets,
            vec![HistogramBucket {
                le_us: u64::MAX,
                count: 0
            }]
        );
    }

    #[test]
    fn bucket_boundaries_match_the_documented_semantics() {
        // Bucket 0 holds only 0 µs; bucket i ≥ 1 covers [2^(i-1), 2^i).
        let h = LatencyHistogram::default();
        h.record_us(0);
        h.record_us(1); // bucket 1: [1, 2)
        h.record_us(2); // bucket 2: [2, 4)
        h.record_us(3); // bucket 2
        h.record_us(1024); // bucket 11: [1024, 2048)
        let count_of = |i: usize| h.counts[i].load(Ordering::Relaxed);
        assert_eq!(count_of(0), 1);
        assert_eq!(count_of(1), 1);
        assert_eq!(count_of(2), 2);
        assert_eq!(count_of(10), 0);
        assert_eq!(count_of(11), 1);
    }

    #[test]
    fn quantiles_report_the_bucket_upper_bound() {
        let h = LatencyHistogram::default();
        h.record_us(1);
        assert_eq!(h.quantile_us(0.5), 2, "1 µs lives in [1, 2) → bound 2");
        let h = LatencyHistogram::default();
        h.record_us(1024);
        assert_eq!(
            h.quantile_us(0.5),
            2048,
            "1024 µs lives in [1024, 2048) → bound 2048"
        );
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_inf() {
        let h = LatencyHistogram::default();
        for us in [0u64, 1, 3, 3, 700, 1024] {
            h.record_us(us);
        }
        let buckets = h.cumulative_buckets();
        let last = buckets.last().unwrap();
        assert_eq!(last.le_us, u64::MAX);
        assert_eq!(last.count, 6);
        for w in buckets.windows(2) {
            assert!(w[0].le_us < w[1].le_us, "bounds must increase");
            assert!(w[0].count <= w[1].count, "cumulative counts must grow");
        }
        // le_us = 2^i − 1 is exact for integer microseconds: everything
        // at or below 1023 µs (five observations) sits under le 1023.
        let le_1023 = buckets.iter().find(|b| b.le_us == 1023).unwrap();
        assert_eq!(le_1023.count, 5);
        // Trailing empties are trimmed: the largest finite bound covers
        // the 1024 µs observation's bucket and nothing beyond it.
        let max_finite = buckets[buckets.len() - 2].le_us;
        assert_eq!(max_finite, 2047);
    }

    #[test]
    fn stage_latencies_fold_per_request_breakdowns() {
        use templar_core::trace::TraceSpans;

        let m = ServiceMetrics::default();
        let spans = TraceSpans::new();
        spans.add(Stage::CandidatePruning, 3_000_000); // 3 ms
        spans.add(Stage::ConfigSearch, 1_000_000);
        m.record_stage_latencies(&spans.finish(Duration::from_micros(4_100)));
        let snap = m.export();
        assert_eq!(snap.stage_latencies.len(), STAGE_COUNT);
        let pruning = &snap.stage_latencies[Stage::CandidatePruning as usize];
        assert_eq!(pruning.stage, "candidate_pruning");
        assert_eq!(pruning.count, 1);
        assert_eq!(pruning.sum_us, 3_000);
        // Stages that never ran record nothing.
        let ranking = &snap.stage_latencies[Stage::Ranking as usize];
        assert_eq!(ranking.count, 0);
    }

    #[test]
    fn prometheus_exposition_is_valid_text_format() {
        let m = ServiceMetrics::default();
        m.record_translation(Duration::from_micros(150), true);
        m.record_translation(Duration::from_micros(90), false);
        let spans = templar_core::trace::TraceSpans::new();
        spans.add(Stage::ConfigSearch, 80_000);
        m.record_stage_latencies(&spans.finish(Duration::from_micros(150)));
        let snap = m.export();
        let text = snap.to_prometheus_text("mas");

        let mut seen_families = std::collections::BTreeSet::new();
        let mut samples = 0usize;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let family = parts.next().unwrap().to_string();
                let kind = parts.next().unwrap();
                assert!(matches!(kind, "counter" | "gauge" | "histogram"));
                assert!(
                    seen_families.insert(family.clone()),
                    "family {family} declared twice"
                );
            } else if line.starts_with("# HELP ") {
                continue;
            } else {
                // A sample: name{labels} value — value parses as u64.
                let (name_labels, value) = line.rsplit_once(' ').unwrap();
                value
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("sample value must be an integer: {line}"));
                assert!(name_labels.starts_with("templar_"), "bad name: {line}");
                assert!(name_labels.contains("tenant=\"mas\""), "unlabelled: {line}");
                samples += 1;
            }
        }
        assert!(samples > 30, "expected a full exposition, got {samples}");
        // The histogram contract: the +Inf bucket equals the count series.
        assert!(text.contains(
            "templar_translate_latency_microseconds_bucket{tenant=\"mas\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("templar_translate_latency_microseconds_count{tenant=\"mas\"} 2"));
    }

    #[test]
    fn multi_tenant_exposition_declares_each_family_once() {
        let a = ServiceMetrics::default();
        a.record_translation(Duration::from_micros(10), true);
        let b = ServiceMetrics::default();
        let (sa, sb) = (a.export(), b.export());
        let text = prometheus_text(&[("mas", &sa), ("yelp", &sb)]);
        assert_eq!(
            text.matches("# TYPE templar_translations_total counter")
                .count(),
            1
        );
        assert!(text.contains("templar_translations_total{tenant=\"mas\"} 1"));
        assert!(text.contains("templar_translations_total{tenant=\"yelp\"} 0"));
    }
}
