//! Serving-layer errors.

use std::fmt;
use templar_core::Obscurity;

/// Errors surfaced by [`TemplarService`](crate::TemplarService) operations.
#[derive(Debug)]
pub enum ServiceError {
    /// The bounded ingestion queue is at capacity; the entry was dropped.
    QueueFull,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// Snapshot persistence failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "ingestion queue is full"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SnapshotError> for ServiceError {
    fn from(e: SnapshotError) -> Self {
        ServiceError::Snapshot(e)
    }
}

/// Errors reading or writing an on-disk snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The snapshot format version is not supported by this build.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The snapshot was produced at a different obscurity level than the
    /// configuration expects; its counts would be meaningless to mix in.
    ObscurityMismatch {
        expected: Obscurity,
        found: Obscurity,
    },
    /// The snapshot body failed to parse.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a Templar snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports {supported})"
            ),
            SnapshotError::ObscurityMismatch { expected, found } => write!(
                f,
                "snapshot obscurity level {} does not match configured {}",
                found.name(),
                expected.name()
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
