//! Serving-layer errors, and their projection onto the wire-facing
//! [`ApiError`] taxonomy.

use std::fmt;
use templar_api::{ApiError, SnapshotRejection};
use templar_core::{Obscurity, TemplarError};

/// Errors surfaced by [`TemplarService`](crate::TemplarService) operations.
#[derive(Debug)]
pub enum ServiceError {
    /// The bounded ingestion queue is at capacity; the entry was dropped.
    QueueFull,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The Templar facade could not be constructed (obscurity mismatch).
    Construction(TemplarError),
    /// Snapshot persistence failed.
    Snapshot(SnapshotError),
    /// The write-ahead ingest journal failed (recovery or checkpointing).
    Wal(WalError),
    /// The operation requires a durable service (one started through
    /// [`TemplarService::recover`](crate::TemplarService::recover)).
    NotDurable,
    /// The service is in degraded read-only mode: the durable journal is
    /// failing, so writes are refused instead of queued into a wedged
    /// journal.  Translations and observability keep serving.
    Degraded,
    /// The ingestion worker thread could not be spawned.
    Spawn(std::io::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "ingestion queue is full"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Construction(e) => write!(f, "construction error: {e}"),
            ServiceError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ServiceError::Wal(e) => write!(f, "write-ahead journal error: {e}"),
            ServiceError::NotDurable => {
                write!(
                    f,
                    "service has no durable directory (not started via recover)"
                )
            }
            ServiceError::Degraded => {
                write!(f, "service is degraded (read-only): journal is failing")
            }
            ServiceError::Spawn(e) => write!(f, "failed to spawn ingestion worker: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SnapshotError> for ServiceError {
    fn from(e: SnapshotError) -> Self {
        ServiceError::Snapshot(e)
    }
}

impl From<TemplarError> for ServiceError {
    fn from(e: TemplarError) -> Self {
        ServiceError::Construction(e)
    }
}

impl From<WalError> for ServiceError {
    fn from(e: WalError) -> Self {
        ServiceError::Wal(e)
    }
}

/// Errors reading or writing the write-ahead ingest journal.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The journal's promise was broken below the truncatable tail: a torn
    /// or gapped segment that is *not* the final one, or an undecodable
    /// record.  Evidence the journal durably accepted is gone, so recovery
    /// refuses to serve a silently thinner state.
    Corrupt {
        /// The segment file the damage was found in.
        segment: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "io: {e}"),
            WalError::Corrupt { segment, detail } => {
                write!(f, "corrupt journal segment {segment}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Errors reading or writing an on-disk snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The snapshot format version is not supported by this build.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The snapshot was produced at a different obscurity level than the
    /// configuration expects; its counts would be meaningless to mix in.
    ObscurityMismatch {
        expected: Obscurity,
        found: Obscurity,
    },
    /// The snapshot body failed to parse.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a Templar snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports {supported})"
            ),
            SnapshotError::ObscurityMismatch { expected, found } => write!(
                f,
                "snapshot obscurity level {} does not match configured {}",
                found.name(),
                expected.name()
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Project a snapshot error onto the wire taxonomy.  Every structured field
/// crosses as data; only the unserializable `io::Error` is stringified (via
/// `Display`, not `Debug`).
impl From<SnapshotError> for ApiError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(io) => ApiError::SnapshotIo {
                detail: io.to_string(),
            },
            SnapshotError::BadMagic => ApiError::SnapshotRejected {
                rejection: SnapshotRejection::BadMagic,
            },
            SnapshotError::UnsupportedVersion { found, supported } => ApiError::SnapshotRejected {
                rejection: SnapshotRejection::UnsupportedVersion { found, supported },
            },
            SnapshotError::ObscurityMismatch { expected, found } => ApiError::SnapshotRejected {
                rejection: SnapshotRejection::ObscurityMismatch { expected, found },
            },
            SnapshotError::Corrupt(detail) => ApiError::SnapshotRejected {
                rejection: SnapshotRejection::Corrupt { detail },
            },
        }
    }
}

/// Project a service error onto the wire taxonomy: queue-full becomes
/// [`ApiError::Backpressure`] so clients can distinguish "retry later" from
/// hard failures.
impl From<ServiceError> for ApiError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::QueueFull => ApiError::Backpressure,
            ServiceError::ShuttingDown => ApiError::ShuttingDown,
            ServiceError::Construction(error) => ApiError::Construction { error },
            ServiceError::Snapshot(snapshot) => snapshot.into(),
            ServiceError::Wal(wal) => ApiError::Durability {
                detail: wal.to_string(),
            },
            ServiceError::NotDurable => ApiError::Durability {
                detail: "service has no durable directory".to_string(),
            },
            ServiceError::Degraded => ApiError::Degraded,
            ServiceError::Spawn(e) => ApiError::Durability {
                detail: format!("failed to spawn ingestion worker: {e}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_maps_to_backpressure() {
        assert_eq!(
            ApiError::from(ServiceError::QueueFull),
            ApiError::Backpressure
        );
        assert_eq!(
            ApiError::from(ServiceError::ShuttingDown),
            ApiError::ShuttingDown
        );
        assert_eq!(ApiError::from(ServiceError::Degraded), ApiError::Degraded);
    }

    #[test]
    fn corrupt_snapshots_cross_as_structured_data() {
        let api: ApiError =
            ServiceError::Snapshot(SnapshotError::Corrupt("truncated body".into())).into();
        assert_eq!(
            api,
            ApiError::SnapshotRejected {
                rejection: SnapshotRejection::Corrupt {
                    detail: "truncated body".into()
                }
            }
        );
        // Round-trip through the wire encoding loses nothing.
        let back: ApiError = serde_json::from_str(&serde_json::to_string(&api).unwrap()).unwrap();
        assert_eq!(back, api);
    }

    #[test]
    fn obscurity_mismatch_crosses_with_both_levels() {
        let api: ApiError = ServiceError::Snapshot(SnapshotError::ObscurityMismatch {
            expected: Obscurity::NoConstOp,
            found: Obscurity::Full,
        })
        .into();
        let ApiError::SnapshotRejected {
            rejection: SnapshotRejection::ObscurityMismatch { expected, found },
        } = api
        else {
            panic!("wrong projection: {api:?}");
        };
        assert_eq!(expected, Obscurity::NoConstOp);
        assert_eq!(found, Obscurity::Full);
    }
}
