//! Bounded slow-query capture.
//!
//! The service traces every translation it serves; this module keeps the
//! top-N *slowest* of them — question text, per-stage latency breakdown and
//! search counters — so "why was that request slow" is answerable after the
//! fact without external tooling.  The ring is a small sorted `Vec` under a
//! mutex: capture is off the hot path for the overwhelming majority of
//! requests (a full ring rejects anything faster than its current minimum
//! with one lock + one comparison), and readers get a clean snapshot.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use templar_api::SlowQueryReport;

/// A bounded, sorted capture of the slowest translations served.
#[derive(Debug)]
pub(crate) struct SlowQueryLog {
    capacity: usize,
    seq: AtomicU64,
    /// Sorted by `total_us` descending (slowest first), at most `capacity`
    /// entries.
    entries: Mutex<Vec<SlowQueryReport>>,
}

impl SlowQueryLog {
    pub(crate) fn new(capacity: usize) -> Self {
        SlowQueryLog {
            capacity,
            seq: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(capacity.min(64))),
        }
    }

    /// Offer one finished translation for capture.  Kept iff the ring has
    /// room or the request is slower than the current fastest capture.
    pub(crate) fn offer(&self, mut report: SlowQueryReport) {
        if self.capacity == 0 {
            return;
        }
        report.seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity
            && entries
                .last()
                .is_some_and(|min| report.total_us <= min.total_us)
        {
            return;
        }
        let at = entries.partition_point(|existing| existing.total_us >= report.total_us);
        entries.insert(at, report);
        entries.truncate(self.capacity);
    }

    /// Snapshot the captured queries, slowest first.
    pub(crate) fn snapshot(&self) -> Vec<SlowQueryReport> {
        self.entries.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use templar_core::{SearchStats, TraceSpans};

    fn report(total_us: u64) -> SlowQueryReport {
        SlowQueryReport {
            seq: 0,
            question: format!("q{total_us}"),
            total_us,
            ok: true,
            trace: TraceSpans::new().finish(std::time::Duration::from_micros(total_us)),
            search: SearchStats::default(),
            cache_hit: false,
        }
    }

    #[test]
    fn keeps_the_slowest_up_to_capacity() {
        let log = SlowQueryLog::new(3);
        for us in [50u64, 10, 90, 70, 30] {
            log.offer(report(us));
        }
        let captured = log.snapshot();
        let totals: Vec<u64> = captured.iter().map(|r| r.total_us).collect();
        assert_eq!(totals, vec![90, 70, 50]);
        // Sequence numbers are per-offer and survive eviction.
        assert!(captured.iter().all(|r| r.seq >= 1 && r.seq <= 5));
    }

    #[test]
    fn a_full_ring_rejects_faster_requests_cheaply() {
        let log = SlowQueryLog::new(2);
        log.offer(report(100));
        log.offer(report(200));
        log.offer(report(5));
        let totals: Vec<u64> = log.snapshot().iter().map(|r| r.total_us).collect();
        assert_eq!(totals, vec![200, 100]);
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let log = SlowQueryLog::new(0);
        log.offer(report(1_000_000));
        assert!(log.snapshot().is_empty());
    }
}
