//! The bounded ingestion queue between translation threads and the
//! ingestion worker.
//!
//! Producers ([`TemplarService::submit_sql`](crate::TemplarService::submit_sql))
//! never block: a full queue fails fast with
//! [`ServiceError::QueueFull`](crate::ServiceError::QueueFull), which bounds
//! the memory the serving process can spend on un-ingested log entries no
//! matter how far the worker falls behind.  The single consumer (the
//! worker) blocks with a timeout so it can also wake up for time-based
//! snapshot refreshes.

use crate::error::ServiceError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct QueueState {
    entries: VecDeque<String>,
    closed: bool,
}

/// A bounded MPSC queue of raw SQL strings.
#[derive(Debug)]
pub struct IngestQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity: usize,
}

impl IngestQueue {
    pub fn new(capacity: usize) -> Self {
        IngestQueue {
            state: Mutex::new(QueueState {
                entries: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue one entry without blocking.
    pub fn submit(&self, sql: String) -> Result<(), ServiceError> {
        let mut state = self.lock();
        if state.closed {
            return Err(ServiceError::ShuttingDown);
        }
        if state.entries.len() >= self.capacity {
            return Err(ServiceError::QueueFull);
        }
        state.entries.push_back(sql);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue up to `max` entries, waiting at most `timeout` for the first
    /// one.  Returns an empty vector on timeout or when the queue is closed
    /// and drained.
    ///
    /// The wait loops on the condvar against an absolute deadline: condvar
    /// waits are allowed to wake spuriously (and `notify_all` from `close`
    /// races benignly with late producers), so a single `wait_timeout` would
    /// both return an empty batch early *and* shorten the effective
    /// deadline — spinning the worker loop faster than its configured
    /// refresh interval.  Waking with no entries before the deadline goes
    /// back to sleep for exactly the time that remains.
    pub fn drain(&self, max: usize, timeout: Duration) -> Vec<String> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        while state.entries.is_empty() && !state.closed {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            if remaining.is_zero() {
                break;
            }
            let (next, _timed_out) = self
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| {
                    let (guard, timeout_result) = e.into_inner();
                    (guard, timeout_result)
                });
            state = next;
        }
        let take = state.entries.len().min(max.max(1));
        state.entries.drain(..take).collect()
    }

    /// Close the queue: producers start failing with `ShuttingDown`, the
    /// consumer drains what is left.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn submit_fails_fast_at_capacity() {
        let q = IngestQueue::new(2);
        q.submit("a".into()).unwrap();
        q.submit("b".into()).unwrap();
        assert!(matches!(q.submit("c".into()), Err(ServiceError::QueueFull)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_takes_in_fifo_order_with_batch_cap() {
        let q = IngestQueue::new(8);
        for s in ["a", "b", "c"] {
            q.submit(s.into()).unwrap();
        }
        let batch = q.drain(2, Duration::from_millis(1));
        assert_eq!(batch, vec!["a".to_string(), "b".to_string()]);
        let rest = q.drain(10, Duration::from_millis(1));
        assert_eq!(rest, vec!["c".to_string()]);
    }

    #[test]
    fn drain_times_out_when_empty() {
        let q = IngestQueue::new(8);
        let start = Instant::now();
        let batch = q.drain(4, Duration::from_millis(20));
        assert!(batch.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    /// Regression: `drain` used to issue a single `wait_timeout`, so any
    /// wakeup without entries — a spurious one, or a racing `notify_all` —
    /// returned an empty batch before the deadline and shortened the
    /// worker's sleep.  The loop must absorb such wakeups and keep waiting
    /// out the full deadline.
    #[test]
    fn spurious_wakeups_do_not_end_the_wait_early() {
        let q = Arc::new(IngestQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let start = Instant::now();
                let batch = q.drain(4, Duration::from_millis(200));
                (batch, start.elapsed())
            })
        };
        // Hammer the condvar with entry-less notifications well before the
        // deadline — exactly what a spurious wakeup looks like to `drain`.
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(5));
            q.not_empty.notify_all();
        }
        let (batch, waited) = consumer.join().unwrap();
        assert!(batch.is_empty(), "no entries were ever enqueued");
        assert!(
            waited >= Duration::from_millis(150),
            "an entry-less wakeup must not end the wait early (waited {waited:?})"
        );
    }

    /// A real entry arriving after a burst of spurious wakeups is still
    /// delivered promptly — the loop re-checks the queue on every wake.
    #[test]
    fn entries_after_spurious_wakeups_are_still_delivered() {
        let q = Arc::new(IngestQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.drain(4, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(5));
        q.not_empty.notify_all(); // spurious
        std::thread::sleep(Duration::from_millis(5));
        q.submit("real".into()).unwrap();
        assert_eq!(consumer.join().unwrap(), vec!["real".to_string()]);
    }

    #[test]
    fn close_rejects_producers_and_wakes_consumer() {
        let q = Arc::new(IngestQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.drain(4, Duration::from_secs(30)))
        };
        // Give the consumer a moment to park, then close.
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(consumer.join().unwrap().is_empty());
        assert!(matches!(
            q.submit("x".into()),
            Err(ServiceError::ShuttingDown)
        ));
    }

    #[test]
    fn waiting_consumer_gets_the_entry() {
        let q = Arc::new(IngestQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.drain(4, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.submit("hello".into()).unwrap();
        assert_eq!(consumer.join().unwrap(), vec!["hello".to_string()]);
    }
}
