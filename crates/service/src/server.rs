//! The concurrent translation service.
//!
//! [`TemplarService`] turns the batch-oriented [`Templar`] facade into a
//! long-running serving system:
//!
//! ```text
//!  translation threads                    ingestion worker (1 thread)
//!  ───────────────────                    ───────────────────────────
//!  handle.load() ──► Arc<Templar> ◄────── store(Arc::new(rebuilt))
//!       │   (immutable snapshot)                    ▲
//!       ▼                                           │ epoch refresh:
//!  translate(nlq) ──► submit_sql(answered) ──►  bounded queue
//!                                               parse + qfg.ingest()
//!                                               (+ eviction via remove())
//! ```
//!
//! * **Reads are snapshot-isolated and never blocked by ingestion.**  Every
//!   translation loads the current `Arc<Templar>` and works on it; the
//!   worker rebuilds the next snapshot *outside* any lock and publishes it
//!   with an O(1) pointer swap ([`SharedTemplar`]).
//! * **Ingestion is incremental.**  The worker owns a master
//!   [`QueryLog`] + [`QueryFragmentGraph`] pair and applies each logged
//!   query with [`QueryFragmentGraph::ingest`] (`O(fragments²)`), instead of
//!   rebuilding the graph from the log.  Publishing a snapshot costs one
//!   graph clone + `Templar::from_parts`.
//! * **Refresh is epoch-style.**  A new snapshot is published every
//!   `refresh_every` applied entries, or after `refresh_interval` when a
//!   smaller trickle is pending — so a quiet service still converges.
//! * **The queue is bounded.**  `submit_sql` fails fast with
//!   [`ServiceError::QueueFull`]; translation latency is never sacrificed to
//!   ingestion backpressure.

use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::ingest::IngestQueue;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::snapshot;
use nlidb::{translate_with, translate_with_config, Nlq, RankedSql, TranslateError};
use nlp::TextSimilarity;
use parking_lot::Mutex;
use relational::Database;
use sqlparse::parse_query;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use templar_api::{ApiError, TranslateRequest, TranslateResponse};
use templar_core::{QueryFragmentGraph, QueryLog, SharedTemplar, Templar, TemplarConfig};

/// Master mutable serving state, owned by the ingestion worker (and briefly
/// borrowed by `save_snapshot` / `force_refresh`).
struct MasterState {
    log: QueryLog,
    qfg: QueryFragmentGraph,
    /// Applied entries not yet reflected in a published snapshot.
    pending_since_swap: usize,
    last_swap: Instant,
}

struct ServiceInner {
    handle: SharedTemplar,
    queue: IngestQueue,
    metrics: ServiceMetrics,
    master: Mutex<MasterState>,
    db: Arc<Database>,
    similarity: TextSimilarity,
    templar_config: TemplarConfig,
    service_config: ServiceConfig,
}

/// A concurrent, incrementally-updating Templar serving handle.
pub struct TemplarService {
    inner: Arc<ServiceInner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl TemplarService {
    /// Start a service over a database and an initial query log, with the
    /// default similarity model.
    pub fn spawn(
        db: Arc<Database>,
        initial_log: &QueryLog,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        Self::spawn_with_similarity(
            db,
            initial_log,
            TextSimilarity::new(),
            templar_config,
            service_config,
        )
    }

    /// Start a service with an explicit similarity model.
    pub fn spawn_with_similarity(
        db: Arc<Database>,
        initial_log: &QueryLog,
        similarity: TextSimilarity,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let qfg = QueryFragmentGraph::build(initial_log, templar_config.obscurity);
        Self::spawn_from_state(
            db,
            initial_log.clone(),
            qfg,
            similarity,
            templar_config,
            service_config,
        )
    }

    /// Start a service from raw SQL log lines.  Unparsable statements are
    /// skipped — real logs contain noise — but *counted*: the skip count is
    /// exported as the `log_skipped_statements` metric (and over the wire in
    /// the registry's `Metrics` response), so a mis-formatted bootstrap log
    /// shows up in observability instead of silently serving from a
    /// half-empty QFG.
    pub fn spawn_from_sql<'a>(
        db: Arc<Database>,
        statements: impl IntoIterator<Item = &'a str>,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let (log, skipped) = QueryLog::from_sql(statements);
        let service = Self::spawn(db, &log, templar_config, service_config)?;
        if skipped > 0 {
            service.inner.metrics.record_log_skipped(skipped as u64);
        }
        Ok(service)
    }

    /// Restore a service from an on-disk snapshot written by
    /// [`TemplarService::save_snapshot`].  The stored QFG is reused as-is —
    /// no log replay.  Fails if the snapshot's obscurity level does not
    /// match `templar_config.obscurity`.
    pub fn spawn_from_snapshot(
        db: Arc<Database>,
        path: &Path,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let snap = snapshot::read_snapshot(path, templar_config.obscurity)?;
        Self::spawn_from_state(
            db,
            snap.log,
            snap.qfg,
            TextSimilarity::new(),
            templar_config,
            service_config,
        )
    }

    fn spawn_from_state(
        db: Arc<Database>,
        log: QueryLog,
        qfg: QueryFragmentGraph,
        similarity: TextSimilarity,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let initial = Templar::from_parts(
            Arc::clone(&db),
            qfg.clone(),
            similarity.clone(),
            templar_config.clone(),
        )?;
        let inner = Arc::new(ServiceInner {
            handle: SharedTemplar::new(initial),
            queue: IngestQueue::new(service_config.queue_capacity),
            metrics: ServiceMetrics::default(),
            master: Mutex::new(MasterState {
                log,
                qfg,
                pending_since_swap: 0,
                last_swap: Instant::now(),
            }),
            db,
            similarity,
            templar_config,
            service_config,
        });
        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("templar-ingest".to_string())
                .spawn(move || ingest_worker(inner))
                .expect("spawn ingestion worker")
        };
        Ok(TemplarService {
            inner,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// The swappable snapshot handle, for wiring into host NLIDB systems
    /// (`PipelineSystem::serving`, `NaLirSystem::serving`).
    pub fn handle(&self) -> SharedTemplar {
        self.inner.handle.clone()
    }

    /// The current immutable snapshot.
    pub fn snapshot(&self) -> Arc<Templar> {
        self.inner.handle.load()
    }

    /// Translate an NLQ against the current snapshot, recording service
    /// metrics.  Lock-free with respect to ingestion: a snapshot rebuild in
    /// flight does not delay this call.
    pub fn translate(&self, nlq: &Nlq) -> Result<Vec<RankedSql>, TranslateError> {
        let started = Instant::now();
        let templar = self.inner.handle.load();
        let results = translate_with(&templar, &nlq.keywords);
        self.inner
            .metrics
            .record_translation(started.elapsed(), results.is_ok());
        results
    }

    /// Serve one typed API request against the current snapshot, applying
    /// its per-request overrides (λ, `use_log_joins`, top-k).  The override
    /// configuration only lives for this call — the snapshot, its QFG and
    /// its cache are shared untouched, and the override-aware join-cache key
    /// keeps differently-configured inferences from aliasing.
    pub fn translate_request(
        &self,
        request: &TranslateRequest,
    ) -> Result<TranslateResponse, ApiError> {
        if let Some(reason) = request.overrides.validate() {
            return Err(ApiError::InvalidRequest { reason });
        }
        if request.keywords.is_empty() {
            return Err(ApiError::InvalidRequest {
                reason: "request carries no keywords".to_string(),
            });
        }
        let started = Instant::now();
        let templar = self.inner.handle.load();
        let config = request.overrides.apply(templar.config());
        let results = translate_with_config(&templar, &request.keywords, &config);
        self.inner
            .metrics
            .record_translation(started.elapsed(), results.is_ok());
        let ranked = results?;
        Ok(TranslateResponse::from_ranked(
            request.tenant.clone(),
            &ranked,
            request.overrides.top_k,
        ))
    }

    /// Submit a newly-logged SQL query for ingestion.  Non-blocking; fails
    /// fast when the bounded queue is at capacity.
    pub fn submit_sql(&self, sql: &str) -> Result<(), ServiceError> {
        self.inner.metrics.record_submitted();
        match self.inner.queue.submit(sql.to_string()) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.inner.metrics.record_rejected();
                Err(e)
            }
        }
    }

    /// Block until every accepted entry has been applied and published in a
    /// snapshot.  Intended for tests, benches and orderly shutdown — the
    /// serving path never needs it.
    pub fn flush(&self) {
        loop {
            let drained = self.inner.queue.is_empty()
                && self.inner.metrics.ingest_applied_total()
                    >= self.inner.metrics.ingest_accepted_total();
            if drained {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        self.force_refresh();
    }

    /// Immediately publish a snapshot of the current master state.
    pub fn force_refresh(&self) {
        let qfg = {
            let mut master = self.inner.master.lock();
            master.pending_since_swap = 0;
            master.last_swap = Instant::now();
            // Fold the delta log in place so each pending pair is merged
            // exactly once (the clone below and every future clone start
            // compacted) and the master's own lookups take the CSR path.
            master.qfg.compact();
            master.qfg.clone()
        };
        publish(&self.inner, qfg);
    }

    /// Persist the current master state (log + QFG) to `path`.
    ///
    /// The master lock is held only for the clone; serialization and disk
    /// I/O happen after it is released, so a snapshot save never stalls the
    /// ingestion worker for the duration of the write.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), ServiceError> {
        let (log, qfg) = {
            let mut master = self.inner.master.lock();
            // Compact in place first; the serializer would otherwise clone
            // the graph a second time to compact the copy.
            master.qfg.compact();
            (master.log.clone(), master.qfg.clone())
        };
        snapshot::write_snapshot(path, &log, &qfg)?;
        Ok(())
    }

    /// Point-in-time service metrics, including the current snapshot's QFG
    /// size and join-cache statistics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.inner.metrics.export();
        let current = self.inner.handle.load();
        let cache = current.join_cache_stats();
        snap.join_cache_hits = cache.hits;
        snap.join_cache_misses = cache.misses;
        snap.join_cache_evictions = cache.evictions;
        snap.join_cache_entries = cache.entries as u64;
        snap.qfg_fragments = current.qfg().fragment_count() as u64;
        snap.qfg_edges = current.qfg().edge_count() as u64;
        snap.qfg_queries = current.qfg().query_count() as u64;
        snap.qfg_interned_fragments = current.qfg().interned_len() as u64;
        snap.qfg_csr_edges = current.qfg().csr_edge_len() as u64;
        // Pending deltas and compactions are ingest-plane gauges: a
        // *published* snapshot is always compacted (its pending count would
        // read 0 by construction), so sample the master graph, where delta
        // pairs actually accumulate between publishes.
        {
            let master = self.inner.master.lock();
            snap.qfg_pending_deltas = master.qfg.pending_delta_len() as u64;
            snap.qfg_compactions = master.qfg.compactions();
        }
        snap
    }

    /// The service configuration in use.
    pub fn service_config(&self) -> &ServiceConfig {
        &self.inner.service_config
    }

    /// The Templar configuration in use.
    pub fn templar_config(&self) -> &TemplarConfig {
        &self.inner.templar_config
    }

    /// Stop accepting ingests, drain the queue, publish the final snapshot
    /// and join the worker.  Called automatically on drop.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for TemplarService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Publish `qfg` as a fresh immutable snapshot.  Runs *outside* the master
/// lock: the expensive part (schema graph + facade construction) never
/// blocks producers or the next ingest batch.
fn publish(inner: &ServiceInner, qfg: QueryFragmentGraph) {
    // The master QFG is maintained at the service's configured obscurity, so
    // reconstruction cannot hit the mismatch arm; this is an internal
    // invariant of the worker, not a public construction path.
    let templar = Templar::from_parts(
        Arc::clone(&inner.db),
        qfg,
        inner.similarity.clone(),
        inner.templar_config.clone(),
    )
    .expect("service QFG always matches the configured obscurity");
    inner.handle.store(Arc::new(templar));
    inner.metrics.record_swap();
}

/// The ingestion worker loop: drain → apply incrementally → maybe publish.
fn ingest_worker(inner: Arc<ServiceInner>) {
    let config = inner.service_config.clone();
    loop {
        let batch = inner
            .queue
            .drain(config.ingest_batch, config.refresh_interval);
        let closed = inner.queue.is_closed();
        if batch.is_empty() && closed && inner.queue.is_empty() {
            // Drained after close: publish anything still pending and exit.
            let pending = {
                let master = inner.master.lock();
                master.pending_since_swap
            };
            if pending > 0 {
                let qfg = {
                    let mut master = inner.master.lock();
                    master.pending_since_swap = 0;
                    master.qfg.compact();
                    master.qfg.clone()
                };
                publish(&inner, qfg);
            }
            return;
        }

        let mut applied = 0u64;
        let mut parse_errors = 0u64;
        let mut evictions = 0u64;
        let to_publish: Option<QueryFragmentGraph> = {
            let mut master = inner.master.lock();
            for sql in &batch {
                match parse_query(sql) {
                    Ok(query) => {
                        master.qfg.ingest(&query);
                        master.log.push(query);
                        master.pending_since_swap += 1;
                        applied += 1;
                    }
                    Err(_) => parse_errors += 1,
                }
            }
            if let Some(cap) = config.max_log_entries {
                while master.log.len() > cap {
                    if let Some(old) = master.log.pop_oldest() {
                        master.qfg.remove(&old);
                        evictions += 1;
                    }
                }
            }
            let due_by_count = master.pending_since_swap >= config.refresh_every;
            let due_by_time = master.pending_since_swap > 0
                && master.last_swap.elapsed() >= config.refresh_interval;
            if due_by_count || due_by_time {
                master.pending_since_swap = 0;
                master.last_swap = Instant::now();
                // Compact in place at the publish boundary: each epoch's
                // delta pairs are folded into the master CSR exactly once,
                // the published clone is born compacted
                // (`Templar::from_parts`'s compact becomes a no-op), and
                // ingest/remove lookups until the next epoch run against a
                // fresh CSR instead of an ever-growing delta map.
                master.qfg.compact();
                Some(master.qfg.clone())
            } else {
                None
            }
        };
        if applied > 0 {
            inner.metrics.record_applied(applied);
        }
        if parse_errors > 0 {
            inner.metrics.record_parse_errors(parse_errors);
        }
        if evictions > 0 {
            inner.metrics.record_evictions(evictions);
        }
        // The rebuild runs after the master lock is released.
        if let Some(qfg) = to_publish {
            publish(&inner, qfg);
        }
    }
}
