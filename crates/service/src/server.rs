//! The concurrent translation service.
//!
//! [`TemplarService`] turns the batch-oriented [`Templar`] facade into a
//! long-running serving system:
//!
//! ```text
//!  translation threads                    ingestion worker (1 thread)
//!  ───────────────────                    ───────────────────────────
//!  handle.load() ──► Arc<Templar> ◄────── store(Arc::new(rebuilt))
//!       │   (immutable snapshot)                    ▲
//!       ▼                                           │ epoch refresh:
//!  translate(nlq) ──► submit_sql(answered) ──►  bounded queue
//!                                               parse + qfg.ingest()
//!                                               (+ eviction via remove())
//! ```
//!
//! * **Reads are snapshot-isolated and never blocked by ingestion.**  Every
//!   translation loads the current `Arc<Templar>` and works on it; the
//!   worker rebuilds the next snapshot *outside* any lock and publishes it
//!   with an O(1) pointer swap ([`SharedTemplar`]).
//! * **Ingestion is incremental.**  The worker owns a master
//!   [`QueryLog`] + [`QueryFragmentGraph`] pair and applies each logged
//!   query with [`QueryFragmentGraph::ingest`] (`O(fragments²)`), instead of
//!   rebuilding the graph from the log.  Publishing a snapshot costs one
//!   graph clone + `Templar::from_parts`.
//! * **Refresh is epoch-style.**  A new snapshot is published every
//!   `refresh_every` applied entries, or after `refresh_interval` when a
//!   smaller trickle is pending — so a quiet service still converges.
//! * **The queue is bounded.**  `submit_sql` fails fast with
//!   [`ServiceError::QueueFull`]; translation latency is never sacrificed to
//!   ingestion backpressure.

use crate::config::{ServiceConfig, WalConfig};
use crate::error::{ServiceError, WalError};
use crate::ingest::IngestQueue;
use crate::metrics::{HealthState, MetricsSnapshot, ServiceMetrics};
use crate::slowlog::SlowQueryLog;
use crate::snapshot;
use crate::storage::{FsStorage, Storage};
use crate::transcache::{request_key, BatchMemo, CachedTranslation, TranslationCache};
use crate::wal::{self, WalWriter};
use nlidb::{translate_traced_memo, Nlq, RankedSql, TranslateError};
use nlp::TextSimilarity;
use parking_lot::Mutex;
use relational::Database;
use sqlparse::parse_query;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use templar_api::{ApiError, SlowQueryReport, TraceReport, TranslateRequest, TranslateResponse};
use templar_core::{
    CandidateMemo, Keyword, KeywordMetadata, QueryFragmentGraph, QueryLog, SharedTemplar, Templar,
    TemplarConfig, TraceCtx, TraceSpans,
};

/// File name of the durable snapshot inside a service's durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.templar";
/// Subdirectory holding the write-ahead journal segments.
pub const WAL_DIR: &str = "wal";
/// Advisory lock file claiming exclusive ownership of a durable directory.
pub const LOCK_FILE: &str = "LOCK";

/// Master mutable serving state, owned by the ingestion worker (and briefly
/// borrowed by `save_snapshot` / `force_refresh`).
struct MasterState {
    log: QueryLog,
    qfg: QueryFragmentGraph,
    /// Applied entries not yet reflected in a published snapshot.
    pending_since_swap: usize,
    last_swap: Instant,
    /// Sequence number of the last journal record applied to this state
    /// (0 = none) — the watermark a checkpoint taken now would record.
    /// Advances per journal record, parse failures included, so replay
    /// alignment never depends on what happened to parse.
    applied_seq: u64,
}

/// The durable half of a recovered service: the directory its snapshot and
/// journal live in, and the journal's single writer.
struct Durable {
    dir: PathBuf,
    wal: Mutex<WalWriter>,
    /// The storage boundary every durable byte crosses — the real
    /// filesystem in production, a fault injector in the chaos tests.
    storage: Arc<dyn Storage>,
    /// Holds the advisory lock on `dir/LOCK` for the service's lifetime.
    /// The OS releases it when the file closes — process death included —
    /// so a crashed owner never wedges its directory.
    _lock: std::fs::File,
    /// Serializes whole checkpoints.  `checkpoint` is public and also runs
    /// from `shutdown`; two interleaved checkpoints could otherwise invert —
    /// an older watermark's snapshot renamed over a newer one *after* the
    /// newer checkpoint GC'd the segments the older watermark still needs,
    /// leaving the directory unrecoverable.
    checkpoint_lock: Mutex<()>,
}

impl Durable {
    fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    fn wal_dir(&self) -> PathBuf {
        self.dir.join(WAL_DIR)
    }
}

struct ServiceInner {
    handle: SharedTemplar,
    queue: IngestQueue,
    metrics: ServiceMetrics,
    slow_queries: SlowQueryLog,
    master: Mutex<MasterState>,
    db: Arc<Database>,
    similarity: TextSimilarity,
    templar_config: TemplarConfig,
    service_config: ServiceConfig,
    /// `Some` on services started through [`TemplarService::recover`].
    durable: Option<Durable>,
    /// Admission-controlled operations currently executing for this tenant,
    /// bounded by [`ServiceConfig::max_inflight`].
    inflight: AtomicU64,
    /// The epoch-keyed translation cache, invalidated wholesale on every
    /// snapshot publish.
    transcache: TranslationCache,
    /// Batch-scoped candidate-list sharing between concurrently in-flight
    /// translations on the same snapshot.
    batch_memo: BatchMemo,
}

/// A reserved slot of a tenant's in-flight quota, handed out by
/// [`TemplarService::try_admit`].  The slot is released when the permit is
/// dropped — hold it across the admitted operation.
pub struct InflightPermit {
    inner: Arc<ServiceInner>,
}

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.inner.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for InflightPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightPermit")
            .field("inflight", &self.inner.inflight.load(Ordering::Relaxed))
            .finish()
    }
}

/// A concurrent, incrementally-updating Templar serving handle.
pub struct TemplarService {
    inner: Arc<ServiceInner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl TemplarService {
    /// Start a service over a database and an initial query log, with the
    /// default similarity model.
    pub fn spawn(
        db: Arc<Database>,
        initial_log: &QueryLog,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        Self::spawn_with_similarity(
            db,
            initial_log,
            TextSimilarity::new(),
            templar_config,
            service_config,
        )
    }

    /// Start a service with an explicit similarity model.
    pub fn spawn_with_similarity(
        db: Arc<Database>,
        initial_log: &QueryLog,
        similarity: TextSimilarity,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let qfg = QueryFragmentGraph::build(initial_log, templar_config.obscurity);
        Self::spawn_from_state(
            db,
            initial_log.clone(),
            qfg,
            similarity,
            templar_config,
            service_config,
        )
    }

    /// Start a service from raw SQL log lines.  Unparsable statements are
    /// skipped — real logs contain noise — but *counted*: the skip count is
    /// exported as the `log_skipped_statements` metric (and over the wire in
    /// the registry's `Metrics` response), so a mis-formatted bootstrap log
    /// shows up in observability instead of silently serving from a
    /// half-empty QFG.
    pub fn spawn_from_sql<'a>(
        db: Arc<Database>,
        statements: impl IntoIterator<Item = &'a str>,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let (log, skipped) = QueryLog::from_sql(statements);
        let service = Self::spawn(db, &log, templar_config, service_config)?;
        if skipped > 0 {
            service.inner.metrics.record_log_skipped(skipped as u64);
        }
        Ok(service)
    }

    /// Restore a service from an on-disk snapshot written by
    /// [`TemplarService::save_snapshot`].  The stored QFG is reused as-is —
    /// no log replay.  Fails if the snapshot's obscurity level does not
    /// match `templar_config.obscurity`.
    pub fn spawn_from_snapshot(
        db: Arc<Database>,
        path: &Path,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let snap = snapshot::read_snapshot(path, templar_config.obscurity)?;
        Self::spawn_from_state(
            db,
            snap.log,
            snap.qfg,
            TextSimilarity::new(),
            templar_config,
            service_config,
        )
    }

    /// Recover (or bootstrap) a **durable** service from a directory, with
    /// the default similarity model.  See
    /// [`TemplarService::recover_with_similarity`].
    pub fn recover(
        db: Arc<Database>,
        dir: &Path,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        Self::recover_with_similarity(
            db,
            dir,
            TextSimilarity::new(),
            templar_config,
            service_config,
        )
    }

    /// Recover a durable service end-to-end:
    ///
    /// 1. load the latest valid snapshot (`dir/snapshot.templar`) if one
    ///    exists, taking its journal **watermark** from the header,
    /// 2. replay the write-ahead journal tail (`dir/wal/`) above the
    ///    watermark — a torn final record is truncated, not fatal,
    /// 3. re-apply the log retention bound, and
    /// 4. resume journaling on a fresh segment.
    ///
    /// An empty (or absent) directory bootstraps a fresh durable service, so
    /// `recover` is also the way to *start* one; every subsequent start goes
    /// through the same code path a crash would exercise.  The ingestion
    /// worker journals every accepted entry *before* applying it, so a
    /// `kill -9` between checkpoints loses at most the un-fsynced journal
    /// tail (bounded by the `fsync_every` / `fsync_interval` knobs of
    /// [`crate::config::WalConfig`]).
    pub fn recover_with_similarity(
        db: Arc<Database>,
        dir: &Path,
        similarity: TextSimilarity,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        Self::recover_with_storage(
            db,
            dir,
            FsStorage::shared(),
            similarity,
            templar_config,
            service_config,
        )
    }

    /// [`recover_with_similarity`](Self::recover_with_similarity) over an
    /// explicit [`Storage`] — the seam the chaos tests inject faults
    /// through.  Every durable byte this service reads or writes (snapshot,
    /// journal, lock file, directory fsyncs) crosses `storage`.
    pub fn recover_with_storage(
        db: Arc<Database>,
        dir: &Path,
        storage: Arc<dyn Storage>,
        similarity: TextSimilarity,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        storage.create_dir_all(dir).map_err(WalError::Io)?;
        // Claim exclusive ownership before touching anything: two live
        // services journaling into the same directory would truncate each
        // other's segments and overwrite each other's snapshots.  The lock
        // is advisory and process-scoped, so a `kill -9`'d owner releases
        // it automatically.
        let lock = storage.lock_exclusive(&dir.join(LOCK_FILE)).map_err(|e| {
            WalError::Io(std::io::Error::new(
                e.kind(),
                format!(
                    "durable directory {} could not be claimed: {e}",
                    dir.display()
                ),
            ))
        })?;
        // Sweep snapshot temp files a crash orphaned mid-checkpoint: their
        // names are unique per write (pid + counter), so unlike the old
        // fixed `.tmp` name they never self-overwrite — without this sweep
        // each crash mid-checkpoint would leak a full snapshot-sized file.
        // Safe under the lock just taken: any `.tmp` here is abandoned.
        if let Ok(names) = storage.list_dir(dir) {
            for name in names {
                if name.starts_with('.') && name.ends_with(".tmp") {
                    storage.remove_file(&dir.join(&name)).ok();
                }
            }
        }
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (mut log, mut qfg, watermark) = if storage.exists(&snapshot_path) {
            let (snap, watermark) = snapshot::read_snapshot_from(
                storage.as_ref(),
                &snapshot_path,
                templar_config.obscurity,
            )?;
            (snap.log, snap.qfg, watermark)
        } else {
            (
                QueryLog::new(),
                QueryFragmentGraph::empty(templar_config.obscurity),
                0,
            )
        };
        let snapshot_body_bytes = storage.file_len(&snapshot_path).ok();
        let wal_dir = dir.join(WAL_DIR);
        // Replay the journal tail in bounded batches: ingest applies each
        // batch against the tiered delta runs and the retention bound is
        // enforced per batch, so recovery's decoded-entry footprint stays at
        // `recovery_batch_bytes` (plus one oversized record) no matter how
        // long the tail is.  Eviction keeps exactly the newest `cap` entries
        // and the QFG's counts are order-insensitive nets, so per-batch
        // eviction recovers the same state an uninterrupted worker held.
        let mut replay_parse_errors = 0u64;
        let cap = service_config.max_log_entries;
        let stats = wal::replay_batched_with(
            storage.as_ref(),
            &wal_dir,
            watermark,
            service_config.recovery_batch_bytes,
            &mut |batch| {
                for (_seq, sql) in batch {
                    match parse_query(sql) {
                        Ok(query) => {
                            qfg.ingest(&query);
                            log.push(query);
                        }
                        Err(_) => replay_parse_errors += 1,
                    }
                }
                if let Some(cap) = cap {
                    while log.len() > cap {
                        if let Some(old) = log.pop_oldest() {
                            qfg.remove(&old);
                        }
                    }
                }
            },
        )?;
        let replay_count = stats.replayed;
        let applied_seq = stats.next_seq - 1;
        let writer = WalWriter::create_with(
            Arc::clone(&storage),
            &wal_dir,
            stats.next_seq,
            service_config.wal.clone(),
        )
        .map_err(WalError::Io)?;
        let durable = Durable {
            dir: dir.to_path_buf(),
            wal: Mutex::new(writer),
            storage,
            _lock: lock,
            checkpoint_lock: Mutex::new(()),
        };
        let service = Self::spawn_from_parts(
            db,
            log,
            qfg,
            similarity,
            templar_config,
            service_config,
            Some(durable),
            applied_seq,
        )?;
        if replay_count > 0 {
            service.inner.metrics.record_wal_replayed(replay_count);
        }
        service
            .inner
            .metrics
            .record_recovery_peak_batch_bytes(stats.peak_batch_bytes);
        if let Some(bytes) = snapshot_body_bytes {
            service.inner.metrics.record_snapshot_body_bytes(bytes);
        }
        if stats.truncated_bytes > 0 {
            // A torn tail was cut: bounded data loss (acknowledged but
            // un-fsynced entries), surfaced so operators can tell "clean
            // recovery" from "recovery that dropped the tail".
            service
                .inner
                .metrics
                .record_wal_truncated(stats.truncated_bytes);
        }
        if replay_parse_errors > 0 {
            // Replay is bootstrap-log assembly, so unparsable records count
            // under `log_skipped_statements` — NOT `ingest_parse_errors`,
            // which participates in the accepted == applied accounting that
            // `flush` and `ingest_lag` rely on; inflating the applied side
            // with errors no submission matched would let `flush` return
            // before live entries were applied.
            service
                .inner
                .metrics
                .record_log_skipped(replay_parse_errors);
        }
        Ok(service)
    }

    fn spawn_from_state(
        db: Arc<Database>,
        log: QueryLog,
        qfg: QueryFragmentGraph,
        similarity: TextSimilarity,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        Self::spawn_from_parts(
            db,
            log,
            qfg,
            similarity,
            templar_config,
            service_config,
            None,
            0,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_from_parts(
        db: Arc<Database>,
        log: QueryLog,
        qfg: QueryFragmentGraph,
        similarity: TextSimilarity,
        templar_config: TemplarConfig,
        service_config: ServiceConfig,
        durable: Option<Durable>,
        applied_seq: u64,
    ) -> Result<Self, ServiceError> {
        let initial = Templar::from_parts(
            Arc::clone(&db),
            qfg.clone(),
            similarity.clone(),
            templar_config.clone(),
        )?;
        let inner = Arc::new(ServiceInner {
            handle: SharedTemplar::new(initial),
            queue: IngestQueue::new(service_config.queue_capacity),
            metrics: ServiceMetrics::default(),
            slow_queries: SlowQueryLog::new(service_config.slow_query_capacity),
            master: Mutex::new(MasterState {
                log,
                qfg,
                pending_since_swap: 0,
                last_swap: Instant::now(),
                applied_seq,
            }),
            db,
            similarity,
            templar_config,
            transcache: TranslationCache::new(service_config.translation_cache_capacity),
            service_config,
            durable,
            inflight: AtomicU64::new(0),
            batch_memo: BatchMemo::default(),
        });
        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("templar-ingest".to_string())
                .spawn(move || ingest_worker(inner))
                .map_err(ServiceError::Spawn)?
        };
        Ok(TemplarService {
            inner,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// The swappable snapshot handle, for wiring into host NLIDB systems
    /// (`PipelineSystem::serving`, `NaLirSystem::serving`).
    pub fn handle(&self) -> SharedTemplar {
        self.inner.handle.clone()
    }

    /// The current immutable snapshot.
    pub fn snapshot(&self) -> Arc<Templar> {
        self.inner.handle.load()
    }

    /// Translate an NLQ against the current snapshot, recording service
    /// metrics.  Lock-free with respect to ingestion: a snapshot rebuild in
    /// flight does not delay this call.
    pub fn translate(&self, nlq: &Nlq) -> Result<Vec<RankedSql>, TranslateError> {
        let templar = self.inner.handle.load();
        let (results, _) =
            self.traced_translate(&templar, &nlq.text, &nlq.keywords, templar.config(), None);
        results
    }

    /// Run one translation with per-stage tracing.  Every served request is
    /// traced: the breakdown feeds the per-stage latency histograms and the
    /// slow-query ring, and is returned so `translate_request` can ship it
    /// to clients that asked.  The added cost over the untraced library
    /// path is a handful of monotonic-clock reads per request — noise next
    /// to a translation.
    fn traced_translate(
        &self,
        templar: &Templar,
        question: &str,
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
        memo: Option<&dyn CandidateMemo>,
    ) -> (Result<Vec<RankedSql>, TranslateError>, TraceReport) {
        let spans = TraceSpans::new();
        let started = Instant::now();
        let (results, search) =
            translate_traced_memo(templar, keywords, config, TraceCtx::enabled(&spans), memo);
        let total = started.elapsed();
        let trace = spans.finish(total);
        self.inner.metrics.record_search(&search);
        self.inner
            .metrics
            .record_translation(total, results.is_ok());
        self.inner.metrics.record_stage_latencies(&trace);
        self.inner.slow_queries.offer(SlowQueryReport {
            seq: 0, // assigned by the ring
            question: question.to_string(),
            total_us: trace.total_us(),
            ok: results.is_ok(),
            trace: trace.clone(),
            search,
            cache_hit: false,
        });
        (
            results,
            TraceReport {
                breakdown: trace,
                search,
                cache_hit: false,
            },
        )
    }

    /// The slowest translations served so far (bounded by
    /// [`ServiceConfig::slow_query_capacity`]), slowest first, each with
    /// its per-stage latency breakdown.
    pub fn slow_queries(&self) -> Vec<SlowQueryReport> {
        self.inner.slow_queries.snapshot()
    }

    /// Serve one typed API request against the current snapshot, applying
    /// its per-request overrides (λ, `use_log_joins`, top-k).  The override
    /// configuration only lives for this call — the snapshot, its QFG and
    /// its cache are shared untouched, and the override-aware join-cache key
    /// keeps differently-configured inferences from aliasing.
    ///
    /// Repeated traffic rides the epoch-keyed translation cache: the cache
    /// epoch is read *before* the snapshot is loaded, a hit returns the
    /// cached response (byte-identical to recomputing against that
    /// snapshot), and a computed success is inserted only if the epoch is
    /// still current — so a concurrent publish can at worst reject an
    /// insert, never leave a stale entry.  `request.bypass_cache` skips
    /// lookup, insert and hit/miss accounting entirely.  Misses join the
    /// tenant's in-flight batch, sharing pruned candidate lists with
    /// concurrent translations on the same snapshot.
    pub fn translate_request(
        &self,
        request: &TranslateRequest,
    ) -> Result<TranslateResponse, ApiError> {
        if let Some(reason) = request.overrides.validate() {
            return Err(ApiError::InvalidRequest { reason });
        }
        if request.keywords.is_empty() {
            return Err(ApiError::InvalidRequest {
                reason: "request carries no keywords".to_string(),
            });
        }
        let epoch = self.inner.transcache.epoch();
        let templar = self.inner.handle.load();
        let config = request.overrides.apply(templar.config());
        // A request whose components refuse to serialize gets no key and
        // bypasses the cache entirely — a degraded key must never alias.
        let key = request_key(&request.nlq, &request.keywords, &request.overrides);
        if !request.bypass_cache {
            if let Some(key) = &key {
                if let Some(hit) = self.inner.transcache.get(key) {
                    return Ok(self.serve_cache_hit(request, hit));
                }
                self.inner.metrics.record_translation_cache_miss();
            }
        }
        // Batches are keyed by (epoch, snapshot address): during the
        // store-then-invalidate publish window two in-flight requests can
        // hold different snapshots under one epoch, and both Arcs being
        // alive makes their addresses distinct — no ABA.
        let batch = self
            .inner
            .batch_memo
            .enter((epoch, Arc::as_ptr(&templar) as usize));
        let (results, trace) = self.traced_translate(
            &templar,
            &request.nlq,
            &request.keywords,
            &config,
            Some(&batch),
        );
        drop(batch);
        let ranked = results?;
        let response = TranslateResponse::from_ranked(
            request.tenant.clone(),
            &ranked,
            request.overrides.top_k,
        );
        if !request.bypass_cache {
            if let Some(key) = key {
                let evicted = self.inner.transcache.insert_if_epoch(
                    epoch,
                    key,
                    CachedTranslation {
                        response: response.clone(),
                        search: trace.search,
                    },
                );
                if evicted > 0 {
                    self.inner
                        .metrics
                        .record_translation_cache_evictions(evicted);
                }
            }
        }
        Ok(if request.trace {
            response.with_trace(trace)
        } else {
            response
        })
    }

    /// Serve one request straight from the translation cache: record the
    /// (lookup-only) latency and the hit, and log a `cache_hit`-marked
    /// slow-query entry so the capture ring never shows a phantom fast
    /// translation.  The cached response is returned as stored —
    /// byte-identical to the computation that produced it — with a fresh
    /// minimal trace attached when the request asked for one.
    fn serve_cache_hit(
        &self,
        request: &TranslateRequest,
        hit: CachedTranslation,
    ) -> TranslateResponse {
        let started = Instant::now();
        self.inner.metrics.record_translation_cache_hit();
        let trace = TraceSpans::new().finish(started.elapsed());
        self.inner
            .metrics
            .record_translation(started.elapsed(), true);
        self.inner.slow_queries.offer(SlowQueryReport {
            seq: 0, // assigned by the ring
            question: request.nlq.clone(),
            total_us: trace.total_us(),
            ok: true,
            trace: trace.clone(),
            search: hit.search,
            cache_hit: true,
        });
        if request.trace {
            hit.response.with_trace(TraceReport {
                breakdown: trace,
                search: hit.search,
                cache_hit: true,
            })
        } else {
            hit.response
        }
    }

    /// Submit a newly-logged SQL query for ingestion.  Non-blocking; fails
    /// fast when the bounded queue is at capacity, and is refused outright
    /// with [`ServiceError::Degraded`] while the service is in degraded
    /// read-only mode (the durable journal is failing; queueing would pile
    /// entries into a journal that cannot accept them).
    pub fn submit_sql(&self, sql: &str) -> Result<(), ServiceError> {
        if self.inner.metrics.is_degraded() {
            self.inner.metrics.record_degraded_refusal();
            return Err(ServiceError::Degraded);
        }
        self.inner.metrics.record_submitted();
        match self.inner.queue.submit(sql.to_string()) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.inner.metrics.record_rejected();
                Err(e)
            }
        }
    }

    /// Submit accepted-SQL **feedback**: a client confirming it ran (or
    /// approved) this translation.  Feedback rides exactly the same
    /// durable ingest path as [`TemplarService::submit_sql`] — journaled
    /// before it is applied on a durable service — and is additionally
    /// counted under the `feedback_accepted` metric so the learning loop's
    /// close rate is observable separately from raw log shipping.
    pub fn submit_feedback(&self, sql: &str) -> Result<(), ServiceError> {
        self.submit_sql(sql)?;
        self.inner.metrics.record_feedback();
        Ok(())
    }

    /// Reserve one slot of this tenant's in-flight quota
    /// ([`ServiceConfig::max_inflight`]).  Returns `None` — and counts an
    /// `admission_tenant_shed` — when the quota is full; the caller must
    /// then shed the request (the wire projection is
    /// [`ApiError::Backpressure`]) *before* queueing any work for it.
    pub fn try_admit(&self) -> Option<InflightPermit> {
        let quota = self.inner.service_config.max_inflight as u64;
        let mut current = self.inner.inflight.load(Ordering::Relaxed);
        loop {
            if current >= quota {
                self.inner.metrics.record_tenant_shed();
                return None;
            }
            match self.inner.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(InflightPermit {
                        inner: Arc::clone(&self.inner),
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Admission-controlled operations currently holding a permit.
    pub fn inflight(&self) -> u64 {
        self.inner.inflight.load(Ordering::Relaxed)
    }

    /// Count one request turned away by a serving plane's *global* in-flight
    /// cap against this tenant (the limit lives in the plane, the
    /// attribution in the tenant's metrics).
    pub fn record_global_shed(&self) {
        self.inner.metrics.record_global_shed();
    }

    /// Checkpoint a durable service: force the journal tail down, write the
    /// snapshot with the covered sequence number (the watermark) into the
    /// durable directory, and garbage-collect journal segments wholly below
    /// it.  Returns the watermark.  Fails with [`ServiceError::NotDurable`]
    /// on a service that was not started through
    /// [`TemplarService::recover`].
    pub fn checkpoint(&self) -> Result<u64, ServiceError> {
        let durable = self
            .inner
            .durable
            .as_ref()
            .ok_or(ServiceError::NotDurable)?;
        // One checkpoint at a time: see `Durable::checkpoint_lock`.
        let _checkpoint = durable.checkpoint_lock.lock();
        // Sync first: the snapshot+journal pair stays self-consistent even
        // if the snapshot write below fails half-way (the old snapshot and
        // the longer journal still recover the same state).
        {
            let mut wal = durable.wal.lock();
            let outcome = wal.sync();
            drain_wal_health(&self.inner.metrics, &mut wal);
            match outcome {
                Ok(true) => self.inner.metrics.record_wal_fsync(),
                Ok(false) => {}
                Err(e) => return Err(WalError::Io(e).into()),
            }
        }
        let (log, qfg, watermark) = self.clone_master_state();
        let body_bytes = snapshot::write_snapshot_with(
            durable.storage.as_ref(),
            &durable.snapshot_path(),
            &log,
            &qfg,
            Some(watermark),
        )?;
        self.inner.metrics.record_snapshot_body_bytes(body_bytes);
        match wal::gc_segments_with(durable.storage.as_ref(), &durable.wal_dir(), watermark) {
            Ok(0) => {}
            Ok(n) => self.inner.metrics.record_wal_segments_gc(n as u64),
            // The checkpoint itself succeeded; a GC failure only delays
            // space reclamation and is retried next time.
            Err(_) => self.inner.metrics.record_wal_io_errors(1),
        }
        Ok(watermark)
    }

    /// Block until every accepted entry has been applied and published in a
    /// snapshot.  Intended for tests, benches and orderly shutdown — the
    /// serving path never needs it.
    pub fn flush(&self) {
        loop {
            let drained = self.inner.queue.is_empty()
                && self.inner.metrics.ingest_applied_total()
                    >= self.inner.metrics.ingest_accepted_total();
            if drained {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        self.force_refresh();
    }

    /// Immediately publish a snapshot of the current master state.
    pub fn force_refresh(&self) {
        let qfg = {
            let mut master = self.inner.master.lock();
            master.pending_since_swap = 0;
            master.last_swap = Instant::now();
            // Fold the delta log in place so each pending pair is merged
            // exactly once (the clone below and every future clone start
            // compacted) and the master's own lookups take the CSR path.
            master.qfg.compact();
            master.qfg.clone()
        };
        publish(&self.inner, qfg);
    }

    /// Persist the current master state (log + QFG) to `path`.
    ///
    /// The master lock is held only for the clone; serialization and disk
    /// I/O happen after it is released, so a snapshot save never stalls the
    /// ingestion worker for the duration of the write.
    ///
    /// On a durable service the snapshot carries the applied journal
    /// watermark even when `path` is outside the durable directory: a
    /// watermark-less snapshot written over `snapshot.templar` would make
    /// the next recovery replay the *entire* journal on top of a state that
    /// already contains it, silently doubling every count.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), ServiceError> {
        // On a durable service, serialize with `checkpoint`: an unlocked
        // save aimed at the durable snapshot path could otherwise land an
        // older-watermark snapshot *after* a newer checkpoint GC'd the
        // segments that older watermark still needs.
        let _checkpoint = self
            .inner
            .durable
            .as_ref()
            .map(|durable| durable.checkpoint_lock.lock());
        let (log, qfg, applied_seq) = self.clone_master_state();
        let watermark = self.inner.durable.as_ref().map(|_| applied_seq);
        let body_bytes = match self.inner.durable.as_ref() {
            Some(durable) => snapshot::write_snapshot_with(
                durable.storage.as_ref(),
                path,
                &log,
                &qfg,
                watermark,
            )?,
            None => snapshot::write_snapshot_with_watermark(path, &log, &qfg, watermark)?,
        };
        self.inner.metrics.record_snapshot_body_bytes(body_bytes);
        Ok(())
    }

    /// Compact the master graph in place (the serializer would otherwise
    /// clone it a second time to compact the copy) and clone the state for
    /// persistence.  The master lock is held only for the clone — disk I/O
    /// always happens after it is released.
    fn clone_master_state(&self) -> (QueryLog, QueryFragmentGraph, u64) {
        let mut master = self.inner.master.lock();
        master.qfg.compact();
        (master.log.clone(), master.qfg.clone(), master.applied_seq)
    }

    /// Current write-availability state: [`HealthState::Degraded`] while
    /// the durable journal is failing and writes are refused.
    pub fn health_state(&self) -> HealthState {
        self.inner.metrics.health_state()
    }

    /// Point-in-time service metrics, including the current snapshot's QFG
    /// size and join-cache statistics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.inner.metrics.export();
        let current = self.inner.handle.load();
        let cache = current.join_cache_stats();
        snap.join_cache_hits = cache.hits;
        snap.join_cache_misses = cache.misses;
        snap.join_cache_evictions = cache.evictions;
        snap.join_cache_entries = cache.entries as u64;
        snap.qfg_fragments = current.qfg().fragment_count() as u64;
        snap.qfg_edges = current.qfg().edge_count() as u64;
        snap.qfg_queries = current.qfg().query_count() as u64;
        snap.qfg_interned_fragments = current.qfg().interned_len() as u64;
        snap.qfg_csr_edges = current.qfg().csr_edge_len() as u64;
        snap.translation_cache_entries = self.inner.transcache.entries();
        let (word_hits, word_misses) = current.similarity().model().word_cache_stats();
        snap.word_memo_hits = word_hits;
        snap.word_memo_misses = word_misses;
        let (phrase_hits, phrase_misses) = current.similarity().model().phrase_cache_stats();
        snap.phrase_memo_hits = phrase_hits;
        snap.phrase_memo_misses = phrase_misses;
        // Pending deltas and compactions are ingest-plane gauges: a
        // *published* snapshot is always compacted (its pending count would
        // read 0 by construction), so sample the master graph, where delta
        // pairs actually accumulate between publishes.
        {
            let master = self.inner.master.lock();
            snap.qfg_pending_deltas = master.qfg.pending_delta_len() as u64;
            snap.qfg_compactions = master.qfg.compactions();
            snap.qfg_delta_runs = master.qfg.delta_run_len() as u64;
            snap.qfg_run_merges = master.qfg.run_merges();
            snap.wal_applied_seq = master.applied_seq;
        }
        snap
    }

    /// The service configuration in use.
    pub fn service_config(&self) -> &ServiceConfig {
        &self.inner.service_config
    }

    /// The Templar configuration in use.
    pub fn templar_config(&self) -> &TemplarConfig {
        &self.inner.templar_config
    }

    /// Stop accepting ingests, drain the queue, publish the final snapshot
    /// and join the worker.  A durable service additionally checkpoints, so
    /// an orderly shutdown leaves nothing for the next recovery to replay.
    /// Called automatically on drop.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
        if self.inner.durable.is_some() {
            // Best-effort: the journal is already synced by the worker's
            // exit path, so a failed final checkpoint only means the next
            // start replays a longer tail.  Journal-side failures inside
            // `checkpoint` record themselves under `wal_io_errors`;
            // snapshot-side failures are deliberately NOT mislabeled as
            // journal errors here.
            let _ = self.checkpoint();
        }
    }
}

impl Drop for TemplarService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drain the journal's per-episode I/O accounting into the service metrics:
/// one `wal_io_errors` tick per distinct failure episode (not per retried
/// attempt) and the episode's *first* errno, so an operator can tell a disk
/// that filled (ENOSPC) from one that is dying (EIO).
fn drain_wal_health(metrics: &ServiceMetrics, wal: &mut WalWriter) {
    let io_errors = wal.take_io_errors();
    if io_errors > 0 {
        metrics.record_wal_io_errors(io_errors);
    }
    if let Some(errno) = wal.take_last_errno() {
        metrics.record_wal_errno(errno);
    }
}

/// Force the journal tail down with bounded in-line retry: exponential
/// backoff from `journal_retry_base_backoff` doubling up to
/// `journal_retry_max_backoff`, plus up to 25% deterministic xorshift jitter
/// so retry storms de-phase without an entropy source.  Returns the final
/// error once `journal_retry_attempts` tries (the first attempt included)
/// are exhausted — the caller decides whether that degrades the service.
///
/// The journal lock is held across the retries; the total stall is bounded
/// by the configured attempt/backoff knobs (≈15 ms at the defaults), and a
/// wedged journal is exactly the case where letting more writes race in
/// would not help.
fn sync_with_retry(
    metrics: &ServiceMetrics,
    wal: &mut WalWriter,
    wal_config: &WalConfig,
    jitter: &mut u64,
) -> std::io::Result<bool> {
    let mut backoff = wal_config.journal_retry_base_backoff;
    let mut attempt = 0u32;
    loop {
        let outcome = wal.sync();
        drain_wal_health(metrics, wal);
        match outcome {
            Ok(synced) => return Ok(synced),
            Err(e) => {
                attempt += 1;
                if attempt >= wal_config.journal_retry_attempts {
                    return Err(e);
                }
                metrics.record_journal_retry();
                *jitter ^= *jitter << 13;
                *jitter ^= *jitter >> 7;
                *jitter ^= *jitter << 17;
                let base = backoff.max(Duration::from_micros(4));
                let span = (base.as_micros() as u64 / 4).max(1);
                std::thread::sleep(base + Duration::from_micros(*jitter % span));
                backoff = (backoff * 2).min(wal_config.journal_retry_max_backoff);
            }
        }
    }
}

/// Publish `qfg` as a fresh immutable snapshot.  Runs *outside* the master
/// lock: the expensive part (schema graph + facade construction) never
/// blocks producers or the next ingest batch.
fn publish(inner: &ServiceInner, qfg: QueryFragmentGraph) {
    // The master QFG is maintained at the service's configured obscurity, so
    // reconstruction cannot hit the mismatch arm; this is an internal
    // invariant of the worker, not a public construction path.  Should it
    // ever break, keep serving the previous snapshot rather than panicking
    // the worker (which would take translations *and* durability with it).
    let templar = match Templar::from_parts(
        Arc::clone(&inner.db),
        qfg,
        inner.similarity.clone(),
        inner.templar_config.clone(),
    ) {
        Ok(templar) => templar,
        Err(_) => return,
    };
    inner.handle.store(Arc::new(templar));
    inner.metrics.record_swap();
    // Invalidate *after* the store: a request that raced the swap read the
    // cache epoch before loading its snapshot, so its insert against the
    // old epoch is rejected — the worst case is a dropped insert, never a
    // stale entry served against the new snapshot.
    inner.transcache.invalidate();
    inner.metrics.record_translation_cache_invalidation();
}

/// The ingestion worker loop: drain → journal → apply incrementally →
/// maybe publish.
fn ingest_worker(inner: Arc<ServiceInner>) {
    let config = inner.service_config.clone();
    // The journal's time-based fsync only runs when this loop wakes, so a
    // dirty tail must cap the sleep at `fsync_interval` — otherwise the real
    // durability window would be max(fsync_interval, refresh_interval), not
    // what `WalConfig` promises.
    let mut wal_dirty = false;
    // Deterministic xorshift state for retry jitter; any non-zero seed works.
    let mut jitter: u64 = 0x9E37_79B9_7F4A_7C15;
    // Backoff between degraded-mode heal probes, reset on every heal.
    let mut probe_backoff = config.wal.journal_retry_base_backoff;
    loop {
        // Degraded mode: the journal exhausted its in-line retries, writes
        // are being refused at `submit_sql`, and this loop's only job is to
        // probe the journal until it heals.  The probe is a plain `sync()`:
        // success flushes the staged tail the failure stranded, so the heal
        // loses nothing that was acknowledged.  A closed queue overrides the
        // probe loop — shutdown still runs its best-effort final drain.
        if inner.metrics.is_degraded() && !inner.queue.is_closed() {
            if let Some(durable) = &inner.durable {
                let outcome = {
                    let mut wal = durable.wal.lock();
                    let outcome = wal.sync();
                    drain_wal_health(&inner.metrics, &mut wal);
                    outcome
                };
                match outcome {
                    Ok(synced) => {
                        if synced {
                            inner.metrics.record_wal_fsync();
                        }
                        inner.metrics.record_journal_heal();
                        probe_backoff = config.wal.journal_retry_base_backoff;
                    }
                    Err(_) => {
                        std::thread::sleep(probe_backoff.max(Duration::from_millis(1)));
                        probe_backoff =
                            (probe_backoff * 2).min(config.wal.journal_retry_max_backoff);
                        continue;
                    }
                }
            } else {
                // Unreachable: only durable sync paths degrade the service.
                inner.metrics.record_journal_heal();
            }
        }
        // A wedged journal (writes failing, frames piling up in the staging
        // buffer) must not keep absorbing the queue into memory: stop
        // draining until a sync succeeds, so the bounded queue fills and
        // producers get real `QueueFull` backpressure.  A closed queue
        // overrides the stall — shutdown must still drain (the leftover
        // staging is bounded by the queue capacity).
        if let Some(durable) = &inner.durable {
            let mut wal = durable.wal.lock();
            if wal.staged_bytes() > config.wal.max_staged_bytes && !inner.queue.is_closed() {
                match sync_with_retry(&inner.metrics, &mut wal, &config.wal, &mut jitter) {
                    Ok(true) => inner.metrics.record_wal_fsync(),
                    Ok(false) => {}
                    Err(_) => {
                        drop(wal);
                        inner.metrics.enter_degraded();
                        continue;
                    }
                }
                if wal.staged_bytes() > config.wal.max_staged_bytes {
                    drop(wal);
                    std::thread::sleep(
                        config
                            .wal
                            .fsync_interval
                            .max(std::time::Duration::from_millis(1)),
                    );
                    continue;
                }
            }
        }
        let timeout = if wal_dirty {
            config.refresh_interval.min(config.wal.fsync_interval)
        } else {
            config.refresh_interval
        };
        let batch = inner.queue.drain(config.ingest_batch, timeout);
        let closed = inner.queue.is_closed();
        if batch.is_empty() && closed && inner.queue.is_empty() {
            // Drained after close: force the journal tail down, publish
            // anything still pending and exit.
            if let Some(durable) = &inner.durable {
                let mut wal = durable.wal.lock();
                // Best-effort: the process is exiting either way, so a
                // failure here is recorded but does not degrade.
                let outcome = wal.sync();
                drain_wal_health(&inner.metrics, &mut wal);
                if let Ok(true) = outcome {
                    inner.metrics.record_wal_fsync();
                }
            }
            let pending = {
                let master = inner.master.lock();
                master.pending_since_swap
            };
            if pending > 0 {
                let qfg = {
                    let mut master = inner.master.lock();
                    master.pending_since_swap = 0;
                    master.qfg.compact();
                    master.qfg.clone()
                };
                publish(&inner, qfg);
            }
            return;
        }

        // Empty entries never reach the journal (a zero-length frame is
        // indistinguishable from a zero-filled crash artifact) or the
        // parser; they still count as parse errors so the accepted ==
        // applied accounting that `flush` relies on stays balanced.
        let mut batch = batch;
        let mut empty_entries = 0u64;
        batch.retain(|sql| {
            let keep = !sql.is_empty();
            if !keep {
                empty_entries += 1;
            }
            keep
        });

        // Journal the batch *before* any of it touches the master state:
        // an entry is only learned from once it is (at least staged to be)
        // durable.  Sequence numbers advance per record — parse failures
        // included — so the applied watermark always aligns with replay.
        let last_seq: Option<u64> = inner.durable.as_ref().and_then(|durable| {
            let mut wal = durable.wal.lock();
            let mut last = None;
            for sql in &batch {
                last = Some(wal.append(sql));
            }
            if !batch.is_empty() {
                inner.metrics.record_wal_appended(batch.len() as u64);
            }
            // Runs on every wake-up (even empty ones), so an aged dirty
            // tail is flushed within one fsync interval of falling idle.
            match wal.maybe_sync() {
                Ok(true) => inner.metrics.record_wal_fsync(),
                Ok(false) => {}
                // A due-but-failed sync gets the full in-line retry ladder;
                // exhausting it flips the service read-only.  The batch is
                // still applied below — every entry is staged in the
                // journal's buffer and replays through the healing sync.
                Err(_) => {
                    drain_wal_health(&inner.metrics, &mut wal);
                    match sync_with_retry(&inner.metrics, &mut wal, &config.wal, &mut jitter) {
                        Ok(true) => inner.metrics.record_wal_fsync(),
                        Ok(false) => {}
                        Err(_) => inner.metrics.enter_degraded(),
                    }
                }
            }
            drain_wal_health(&inner.metrics, &mut wal);
            wal_dirty = wal.dirty() > 0;
            last
        });

        let mut applied = 0u64;
        let mut parse_errors = empty_entries;
        let mut evictions = 0u64;
        let to_publish: Option<QueryFragmentGraph> = {
            let mut master = inner.master.lock();
            for sql in &batch {
                match parse_query(sql) {
                    Ok(query) => {
                        master.qfg.ingest(&query);
                        master.log.push(query);
                        master.pending_since_swap += 1;
                        applied += 1;
                    }
                    Err(_) => parse_errors += 1,
                }
            }
            if let Some(last_seq) = last_seq {
                master.applied_seq = last_seq;
            }
            if let Some(cap) = config.max_log_entries {
                while master.log.len() > cap {
                    if let Some(old) = master.log.pop_oldest() {
                        master.qfg.remove(&old);
                        evictions += 1;
                    }
                }
            }
            let due_by_count = master.pending_since_swap >= config.refresh_every;
            let due_by_time = master.pending_since_swap > 0
                && master.last_swap.elapsed() >= config.refresh_interval;
            if due_by_count || due_by_time {
                master.pending_since_swap = 0;
                master.last_swap = Instant::now();
                // Compact in place at the publish boundary: each epoch's
                // delta pairs are folded into the master CSR exactly once,
                // the published clone is born compacted
                // (`Templar::from_parts`'s compact becomes a no-op), and
                // ingest/remove lookups until the next epoch run against a
                // fresh CSR instead of an ever-growing delta map.
                master.qfg.compact();
                Some(master.qfg.clone())
            } else {
                None
            }
        };
        if applied > 0 {
            inner.metrics.record_applied(applied);
        }
        if parse_errors > 0 {
            inner.metrics.record_parse_errors(parse_errors);
        }
        if evictions > 0 {
            inner.metrics.record_evictions(evictions);
        }
        // The rebuild runs after the master lock is released.
        if let Some(qfg) = to_publish {
            publish(&inner, qfg);
        }
    }
}
