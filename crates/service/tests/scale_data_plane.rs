//! Data plane at scale: the acceptance suite for million-entry logs.
//!
//! Everything here runs on deterministically scaled MAS workloads
//! ([`datasets::scale_log`]) so the numbers are the same on every machine:
//!
//! * tiered delta compaction keeps the run stack logarithmic and the
//!   publish cost proportional to recent churn, not total history,
//! * crash recovery of a scaled log replays the journal in bounded-memory
//!   batches — the peak decoded batch stays within the configured budget —
//!   and the recovered service answers byte-identically,
//! * v2 snapshots migrate through the v3 load path losslessly at any
//!   graph shape (seeded sweep).
//!
//! The 100× run executes in the default test tier; the full 1000× run is
//! `#[ignore]`d locally and driven explicitly (in release mode) by CI's
//! `scale-smoke` step.

use datasets::{scale_log, Dataset};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use templar_core::{Obscurity, QueryFragmentGraph, QueryLog, TemplarConfig};
use templar_service::{snapshot, ServiceConfig, TemplarService};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("templar-scale-{}-{name}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Copy a durable directory byte-for-byte — the `kill -9` image.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Exact translation bytes for the first few MAS benchmark questions: SQL
/// text plus the raw score bits of every ranked candidate.
fn translation_bytes(service: &TemplarService, mas: &Dataset) -> Vec<(String, u64)> {
    let mut bytes = Vec::new();
    for case in mas.cases.iter().take(3) {
        for ranked in service.translate(&case.nlq).unwrap() {
            bytes.push((ranked.query.to_string(), ranked.score.to_bits()));
        }
    }
    bytes
}

/// Ingest a whole scaled log through the bounded queue, yielding to the
/// worker whenever the queue is at capacity.
fn submit_all(service: &TemplarService, log: &QueryLog) {
    for query in log.queries() {
        let sql = query.to_string();
        while service.submit_sql(&sql).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    service.flush();
}

/// The scaled-MAS crash-recovery acceptance body, parameterized by scale
/// factor and recovery memory budget.
fn scaled_mas_recovery_roundtrip(factor: usize, batch_budget: usize) {
    let mas = Dataset::mas();
    let scaled = scale_log(&mas.full_log(), factor, 0xD1CE + factor as u64);
    let dir = temp_dir(&format!("recovery-{factor}x"));
    let image = temp_dir(&format!("recovery-{factor}x-image"));
    let config = ServiceConfig::default()
        .with_queue_capacity(scaled.len())
        .with_refresh_every(scaled.len() / 4)
        .with_recovery_batch_bytes(batch_budget);
    let service = TemplarService::recover(
        Arc::clone(&mas.db),
        &dir,
        TemplarConfig::paper_defaults(),
        config.clone(),
    )
    .unwrap();
    submit_all(&service, &scaled);
    let live = translation_bytes(&service, &mas);
    let live_metrics = service.metrics();
    assert_eq!(live_metrics.wal_appended, scaled.len() as u64);
    assert_eq!(live_metrics.ingest_applied, scaled.len() as u64);

    copy_dir(&dir, &image); // kill -9 happens "now"
    drop(service);

    let recovered = TemplarService::recover(
        Arc::clone(&mas.db),
        &image,
        TemplarConfig::paper_defaults(),
        config,
    )
    .unwrap();
    let m = recovered.metrics();
    assert_eq!(
        m.wal_replayed,
        scaled.len() as u64,
        "no checkpoint was taken, so the whole scaled journal replays"
    );
    assert!(
        m.recovery_peak_batch_bytes > 0,
        "a non-empty replay must report its high-water mark"
    );
    assert!(
        m.recovery_peak_batch_bytes <= batch_budget as u64,
        "bounded-memory replay: peak batch {} exceeds the {batch_budget}-byte budget",
        m.recovery_peak_batch_bytes
    );
    assert_eq!(
        translation_bytes(&recovered, &mas),
        live,
        "recovery must be byte-identical at {factor}x scale"
    );

    // A checkpoint of the recovered state lands a v3 snapshot whose size is
    // surfaced as a gauge; a second recovery then replays (almost) nothing.
    recovered.checkpoint().unwrap();
    assert!(recovered.metrics().snapshot_body_bytes > 0);
    let image2 = temp_dir(&format!("recovery-{factor}x-image2"));
    copy_dir(&image, &image2);
    drop(recovered);
    let from_snapshot = TemplarService::recover(
        Arc::clone(&mas.db),
        &image2,
        TemplarConfig::paper_defaults(),
        ServiceConfig::default().with_recovery_batch_bytes(batch_budget),
    )
    .unwrap();
    let m2 = from_snapshot.metrics();
    assert_eq!(
        m2.wal_replayed, 0,
        "the checkpoint covers the whole journal"
    );
    assert!(
        m2.snapshot_body_bytes > 0,
        "recovery reports the snapshot size it loaded"
    );
    assert_eq!(
        translation_bytes(&from_snapshot, &mas),
        live,
        "snapshot-based recovery must be byte-identical at {factor}x scale"
    );
}

/// 100× MAS (≈ 20k logged queries): runs in the default test tier and as
/// CI's scale smoke.
#[test]
fn mas_100x_recovers_within_a_64kib_batch_budget_byte_identically() {
    scaled_mas_recovery_roundtrip(100, 64 * 1024);
}

/// 1000× MAS (≈ 200k logged queries): the full acceptance run.  Ignored in
/// the default tier for runtime; CI executes it in release mode
/// (`cargo test --release -- --ignored mas_1000x`).
#[test]
#[ignore = "full-scale acceptance run; executed explicitly by CI in release mode"]
fn mas_1000x_recovers_within_a_256kib_batch_budget_byte_identically() {
    scaled_mas_recovery_roundtrip(1000, 256 * 1024);
}

/// Tiered compaction at scale: the run stack stays logarithmic in total
/// pending work while ingesting a 100× log, and after a publish the next
/// publish's pending work reflects only the churn since — not the total
/// history.
#[test]
fn tiered_publish_cost_tracks_recent_churn_not_total_pending() {
    let mas = Dataset::mas();
    let scaled = scale_log(&mas.full_log(), 100, 7);
    let mut graph = QueryFragmentGraph::empty(Obscurity::NoConstOp);
    // The delta map holds *distinct* pending pairs, and MAS at NoConstOp
    // saturates at a few hundred of those no matter how many entries the
    // log has — the threshold must sit below that plateau for folds to
    // exercise at all.
    graph.set_run_fold_threshold(64);
    for query in scaled.queries() {
        graph.ingest(query);
    }
    let pending = graph.pending_delta_len();
    assert!(pending > 64, "a 100x log must overflow the fold threshold");
    let log2_bound = (usize::BITS - pending.leading_zeros()) as usize + 1;
    assert!(
        graph.delta_run_len() <= log2_bound,
        "geometric merging must keep the run stack logarithmic: {} runs for {} pending",
        graph.delta_run_len(),
        pending
    );
    assert!(graph.run_folds() > 0, "folds must have happened at scale");

    // Publish, then churn a little: the pending work the *next* publish
    // folds is bounded by that churn, three orders of magnitude below the
    // total history it would be without tiering.
    graph.compact();
    assert_eq!(graph.pending_delta_len(), 0);
    let churn: Vec<_> = scaled.queries().iter().take(50).cloned().collect();
    for query in &churn {
        graph.ingest(query);
    }
    let recent = graph.pending_delta_len();
    assert!(
        recent <= 50 * 64,
        "post-publish pending work must be O(recent churn), got {recent} pairs"
    );
    assert!(
        recent < scaled.len(),
        "pending work after publish must not scale with total history"
    );
    graph.compact();
    assert!(graph.is_compacted());
}

/// v2 → v3 migration: any graph shape written with the retired v2 writer
/// loads through the current reader into the observationally identical
/// state, and re-saving it as v3 round-trips verbatim.  A seeded sweep
/// over random log subsets stands in for a proptest (the service crate has
/// no proptest dependency).
#[test]
fn v2_snapshots_migrate_losslessly_across_random_graph_shapes() {
    let mas = Dataset::mas();
    let full: Vec<_> = mas.full_log().queries().iter().cloned().collect();
    let dir = temp_dir("v2-migration");
    fs::create_dir_all(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for round in 0..16 {
        // A random-sized, random-offset slice, ingested in order; some
        // rounds also remove a few queries so freed slots and pending
        // deltas are part of the written shape.
        let len = (rng.next_u64() as usize % full.len()).max(1);
        let start = rng.next_u64() as usize % (full.len() - len + 1);
        let mut log = QueryLog::new();
        let mut graph = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        for query in &full[start..start + len] {
            log.push(query.clone());
            graph.ingest(query);
        }
        for _ in 0..rng.next_u64() % 4 {
            if let Some(victim) = log.pop_oldest() {
                assert!(graph.remove(&victim));
            }
        }
        let v2_path = dir.join(format!("round-{round}.v2.snapshot"));
        snapshot::write_snapshot_v2(&v2_path, &log, &graph).unwrap();
        let migrated = snapshot::read_snapshot(&v2_path, Obscurity::NoConstOp).unwrap();
        assert_eq!(
            migrated.log, log,
            "round {round}: the log must survive migration"
        );
        assert_eq!(
            migrated.qfg, graph,
            "round {round}: the migrated graph must be observationally identical"
        );
        // Re-save as v3 and load again: still identical, now via the
        // sectioned path.
        let v3_path = dir.join(format!("round-{round}.v3.snapshot"));
        snapshot::write_snapshot(&v3_path, &migrated.log, &migrated.qfg).unwrap();
        let reread = snapshot::read_snapshot(&v3_path, Obscurity::NoConstOp).unwrap();
        assert_eq!(
            reread.log, log,
            "round {round}: v3 re-save must round-trip the log"
        );
        assert_eq!(
            reread.qfg, graph,
            "round {round}: v3 re-save must round-trip the graph"
        );
    }
    fs::remove_dir_all(&dir).ok();
}
