//! Crash-safety integration tests for the durable ingest path.
//!
//! The contract under test (ISSUE 4's acceptance criterion): a `kill -9`
//! between snapshot publishes loses **at most the un-fsynced WAL tail** — a
//! recovered service answers the acceptance queries *byte-identically* to an
//! uninterrupted service over the same ingested log.
//!
//! A crash is simulated by copying the durable directory while the original
//! service is still running (the copy is exactly the on-disk image a
//! `kill -9` at that instant would leave — no orderly-shutdown checkpoint)
//! and recovering a second service from the copy.  The torn-write matrix
//! additionally truncates the final journal segment at **every byte
//! boundary** of its tail records before recovering.

use nlidb::Nlq;
use relational::{DataType, Database, Schema};
use sqlparse::BinOp;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use templar_core::{Keyword, KeywordMetadata, QueryLog, TemplarConfig};
use templar_service::{ServiceConfig, TemplarService, SNAPSHOT_FILE, WAL_DIR};

fn academic_db() -> Arc<Database> {
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert(
        "publication",
        vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
    )
    .unwrap();
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    Arc::new(db)
}

fn papers_after_2000() -> Nlq {
    Nlq::new(
        "Return the papers after 2000",
        vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (
                Keyword::new("after 2000"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ],
        vec![],
    )
}

/// Durable config tuned for tests: every record is fsynced as soon as the
/// worker sees it, so `flush()` leaves a fully durable journal.
fn durable_config() -> ServiceConfig {
    ServiceConfig::default()
        .with_refresh_every(4)
        .with_refresh_interval(Duration::from_millis(10))
        .with_wal_fsync_every(1)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("templar-recovery-{}-{name}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Copy a durable directory byte-for-byte — the `kill -9` image.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Translations as comparable bytes: the exact SQL text and the exact score
/// bits of every ranked candidate.
fn translation_bytes(service: &TemplarService, nlq: &Nlq) -> Vec<(String, u64)> {
    service
        .translate(nlq)
        .unwrap()
        .iter()
        .map(|r| (r.query.to_string(), r.score.to_bits()))
        .collect()
}

/// Byte offsets of every whole-record boundary in a journal segment
/// (walking the `[len][crc][payload]` framing), starting with 0.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![0usize];
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if bytes.len() - at - 8 < len {
            break;
        }
        at += 8 + len;
        boundaries.push(at);
    }
    boundaries
}

/// The final (highest-first-seq) journal segment in a durable directory.
fn final_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir.join(WAL_DIR))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    segments.pop().expect("journal has at least one segment")
}

const ACADEMIC_LOG: [&str; 5] = [
    "SELECT p.title FROM publication p WHERE p.year > 1995",
    "SELECT p.title FROM publication p WHERE p.year > 2010",
    "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
    "SELECT j.name FROM journal j",
    "SELECT p.title FROM publication p WHERE p.year > 2001",
];

/// `kill -9` with **no checkpoint ever taken**: the whole log lives in the
/// journal, and recovery replays all of it.  The recovered service answers
/// byte-identically to the still-running original.
#[test]
fn crash_without_checkpoint_replays_the_full_journal() {
    let dir = temp_dir("no-checkpoint");
    let image = temp_dir("no-checkpoint-image");
    let service = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    for sql in ACADEMIC_LOG {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    let live = translation_bytes(&service, &papers_after_2000());
    let live_metrics = service.metrics();
    assert_eq!(live_metrics.wal_appended, 5);
    assert!(live_metrics.wal_fsyncs >= 1);
    assert_eq!(live_metrics.wal_applied_seq, 5);

    copy_dir(&dir, &image); // kill -9 happens "now"
                            // A crash mid-checkpoint can orphan a uniquely-named snapshot temp
                            // file; recovery must sweep it rather than leak it forever.
    let orphan = image.join(format!(".{SNAPSHOT_FILE}.999999.0.tmp"));
    fs::write(&orphan, "half-written snapshot").unwrap();

    let recovered = TemplarService::recover(
        academic_db(),
        &image,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    assert!(
        !orphan.exists(),
        "recovery must sweep crash-orphaned snapshot temp files"
    );
    let m = recovered.metrics();
    assert_eq!(m.wal_replayed, 5, "no snapshot: the whole journal replays");
    assert_eq!(m.wal_applied_seq, 5);
    assert_eq!(m.qfg_queries, live_metrics.qfg_queries);
    assert_eq!(m.qfg_fragments, live_metrics.qfg_fragments);
    assert_eq!(m.qfg_edges, live_metrics.qfg_edges);
    assert_eq!(
        translation_bytes(&recovered, &papers_after_2000()),
        live,
        "recovered service must answer byte-identically"
    );

    drop(service);
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();
}

/// `kill -9` *after* a checkpoint: recovery loads the snapshot, replays only
/// the tail above the watermark, and still answers byte-identically.  The
/// checkpoint also garbage-collects wholly covered segments.
#[test]
fn checkpoint_bounds_replay_and_collects_covered_segments() {
    let dir = temp_dir("checkpointed");
    let image = temp_dir("checkpointed-image");
    let service = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        // Tiny segments so the pre-checkpoint records span several.
        durable_config().with_wal_segment_max_records(2),
    )
    .unwrap();
    for sql in &ACADEMIC_LOG[..3] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    let watermark = service.checkpoint().unwrap();
    assert_eq!(watermark, 3);
    assert!(
        service.metrics().wal_segments_gc >= 1,
        "checkpoint must collect wholly covered segments"
    );
    assert!(dir.join(SNAPSHOT_FILE).exists());

    for sql in &ACADEMIC_LOG[3..] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    let live = translation_bytes(&service, &papers_after_2000());

    copy_dir(&dir, &image); // kill -9 after the un-checkpointed tail

    let recovered = TemplarService::recover(
        academic_db(),
        &image,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    let m = recovered.metrics();
    assert_eq!(
        m.wal_replayed, 2,
        "only the tail above watermark {watermark} replays"
    );
    assert_eq!(m.qfg_queries, 5);
    assert_eq!(translation_bytes(&recovered, &papers_after_2000()), live);

    drop(service);
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();
}

/// The torn-write matrix: truncate the final journal segment at **every
/// byte length** from intact down to empty, and recover from each image.
/// Recovery must always succeed; whole records survive, the torn final
/// record is dropped, and the recovered service serves translations
/// byte-identical to an uninterrupted service over exactly the surviving
/// prefix of the log.
#[test]
fn torn_write_matrix_recovers_at_every_byte_boundary() {
    let dir = temp_dir("torn-matrix");
    // Phase 1: checkpoint a 2-entry prefix and shut down — the prefix is
    // covered by the snapshot and lives in the first session's segment.
    {
        let service = TemplarService::recover(
            academic_db(),
            &dir,
            TemplarConfig::paper_defaults(),
            durable_config(),
        )
        .unwrap();
        for sql in &ACADEMIC_LOG[..2] {
            service.submit_sql(sql).unwrap();
        }
        service.flush();
        assert_eq!(service.checkpoint().unwrap(), 2);
    }
    // Phase 2: a new session journals the 3-entry tail into its own fresh
    // segment (recovery always resumes on a new segment), then "crashes".
    let service = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    assert_eq!(service.metrics().wal_replayed, 0);
    for sql in &ACADEMIC_LOG[2..] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    let image = temp_dir("torn-matrix-image");
    copy_dir(&dir, &image);
    drop(service);

    let segment = final_segment(&image);
    let intact = fs::read(&segment).unwrap();
    let boundaries = record_boundaries(&intact);
    assert_eq!(
        boundaries.len(),
        4,
        "the final segment must hold exactly the 3 tail records"
    );

    // Reference translations for every possible surviving prefix, built
    // from scratch (no durability involved) — the ground truth a recovered
    // service must match byte-for-byte.
    let nlq = papers_after_2000();
    let references: Vec<Vec<(String, u64)>> = (0..=3)
        .map(|survivors| {
            let (log, skipped) = QueryLog::from_sql(ACADEMIC_LOG[..2 + survivors].iter().copied());
            assert_eq!(skipped, 0);
            let reference = TemplarService::spawn(
                academic_db(),
                &log,
                TemplarConfig::paper_defaults(),
                ServiceConfig::default(),
            )
            .unwrap();
            translation_bytes(&reference, &nlq)
        })
        .collect();

    let case = temp_dir("torn-matrix-case");
    for cut in 0..=intact.len() {
        fs::remove_dir_all(&case).ok();
        copy_dir(&image, &case);
        let torn_segment = final_segment(&case);
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&torn_segment)
            .unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);

        let survivors = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        let recovered = TemplarService::recover(
            academic_db(),
            &case,
            TemplarConfig::paper_defaults(),
            durable_config(),
        )
        .unwrap_or_else(|e| panic!("recovery failed at truncation {cut}: {e}"));
        let m = recovered.metrics();
        assert_eq!(
            m.wal_replayed, survivors as u64,
            "truncation at byte {cut} must replay exactly the whole records"
        );
        // The torn remainder (bytes past the last whole record) is cut and
        // reported — the operator-visible signature of bounded tail loss.
        assert_eq!(
            m.wal_truncated_bytes,
            (cut - boundaries[survivors]) as u64,
            "truncation at byte {cut} must report the torn remainder"
        );
        assert_eq!(
            m.qfg_queries,
            2 + survivors as u64,
            "truncation at byte {cut}: snapshot prefix + surviving tail"
        );
        assert_eq!(
            translation_bytes(&recovered, &nlq),
            references[survivors],
            "truncation at byte {cut} must serve the surviving prefix's \
             translations byte-identically"
        );
    }

    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();
    fs::remove_dir_all(&case).ok();
}

/// The acceptance-criterion run on the real MAS workload: ingest MAS gold
/// SQL, crash (dir copy), recover, and answer the MAS acceptance NLQs
/// byte-identically to the uninterrupted service.  Feedback entries ride
/// the same durable path and survive alongside plain submissions.
#[test]
fn mas_acceptance_queries_survive_a_crash_byte_identically() {
    let dataset = datasets::Dataset::mas();
    let dir = temp_dir("mas");
    let image = temp_dir("mas-image");
    let service = TemplarService::recover(
        Arc::clone(&dataset.db),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    // The training log streams in live: half as plain log shipping, half as
    // accepted-translation feedback (same durable path).
    for (i, case) in dataset.cases.iter().enumerate() {
        let sql = case.gold_sql.to_string();
        if i % 2 == 0 {
            service.submit_sql(&sql).unwrap();
        } else {
            service.submit_feedback(&sql).unwrap();
        }
    }
    service.flush();
    let live_metrics = service.metrics();
    assert_eq!(
        live_metrics.feedback_accepted,
        (dataset.cases.len() as u64).div_ceil(2)
    );
    let acceptance: Vec<&datasets::BenchmarkCase> = dataset.cases.iter().take(8).collect();
    let live: Vec<Vec<(String, u64)>> = acceptance
        .iter()
        .map(|case| translation_bytes(&service, &case.nlq))
        .collect();

    copy_dir(&dir, &image); // kill -9

    let recovered = TemplarService::recover(
        Arc::clone(&dataset.db),
        &image,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    assert_eq!(
        recovered.metrics().qfg_queries,
        live_metrics.qfg_queries,
        "every ingested MAS query must survive the crash"
    );
    for (case, expected) in acceptance.iter().zip(&live) {
        assert_eq!(
            &translation_bytes(&recovered, &case.nlq),
            expected,
            "MAS acceptance case {} must translate byte-identically after recovery",
            case.id
        );
    }

    drop(service);
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();
}

/// Regression: journal records that fail to parse at replay must count as
/// bootstrap skips (`log_skipped_statements`), not live
/// `ingest_parse_errors` — the latter participates in the
/// accepted == applied accounting, and starting it ahead of the accepted
/// side would let `flush()` return before freshly submitted entries were
/// applied (serving a stale snapshot) and make `ingest_lag` read 0 with
/// work still pending.
#[test]
fn unparsable_replayed_records_do_not_break_flush_accounting() {
    let dir = temp_dir("replay-noise");
    let image = temp_dir("replay-noise-image");
    {
        let service = TemplarService::recover(
            academic_db(),
            &dir,
            TemplarConfig::paper_defaults(),
            durable_config(),
        )
        .unwrap();
        // The queue accepts without parsing, so noise reaches the journal.
        service.submit_sql("THIS IS NOT SQL AT ALL").unwrap();
        service.submit_sql(ACADEMIC_LOG[0]).unwrap();
        service.flush();
        copy_dir(&dir, &image); // kill -9 with noise in the journal
    }

    let recovered = TemplarService::recover(
        academic_db(),
        &image,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    let m = recovered.metrics();
    assert_eq!(m.wal_replayed, 2, "both journal records replay");
    assert_eq!(m.log_skipped_statements, 1, "noise counts as a skip");
    assert_eq!(m.ingest_parse_errors, 0, "the live counter stays untouched");
    assert_eq!(m.qfg_queries, 1);

    // flush() must still wait for genuinely new work to be applied.
    recovered.submit_sql(ACADEMIC_LOG[1]).unwrap();
    recovered.flush();
    let m = recovered.metrics();
    assert_eq!(m.ingest_applied, 1);
    assert_eq!(m.ingest_lag, 0);
    assert_eq!(
        m.qfg_queries, 2,
        "flush must not return before the new entry is applied"
    );

    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();
}

/// Two live services must never share a durable directory: the second
/// `recover` is refused while the first holds the advisory lock, and the
/// directory becomes recoverable again once the owner is gone.
#[test]
fn a_second_recover_on_a_live_directory_is_refused() {
    let dir = temp_dir("locked");
    let owner = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    owner.submit_sql(ACADEMIC_LOG[0]).unwrap();
    owner.flush();

    let contender = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    );
    assert!(
        contender.is_err(),
        "a live directory must refuse a second owner"
    );
    // The refused attempt corrupted nothing: the owner keeps working...
    owner.submit_sql(ACADEMIC_LOG[1]).unwrap();
    owner.flush();
    assert_eq!(owner.metrics().qfg_queries, 2);
    drop(owner);

    // ...and once the owner exits, the directory recovers normally.
    let successor = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    assert_eq!(successor.metrics().qfg_queries, 2);
    fs::remove_dir_all(&dir).ok();
}

/// Regression: `save_snapshot` on a durable service must carry the applied
/// journal watermark — a watermark-less snapshot written over the durable
/// path would make the next recovery replay the whole journal on top of a
/// state that already contains it, doubling every count.
#[test]
fn save_snapshot_on_a_durable_service_carries_the_watermark() {
    let dir = temp_dir("manual-save");
    let image = temp_dir("manual-save-image");
    let service = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    for sql in &ACADEMIC_LOG[..2] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    // The "persist now" call an operator would reach for — aimed directly
    // at the durable snapshot path.
    service.save_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
    let live = translation_bytes(&service, &papers_after_2000());
    copy_dir(&dir, &image); // kill -9 before any checkpoint
    drop(service);

    let recovered = TemplarService::recover(
        academic_db(),
        &image,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    let m = recovered.metrics();
    assert_eq!(
        m.wal_replayed, 0,
        "journaled entries covered by the manual snapshot must not be re-applied"
    );
    assert_eq!(m.qfg_queries, 2, "counts must not double");
    assert_eq!(translation_bytes(&recovered, &papers_after_2000()), live);
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();
}

/// Orderly shutdown checkpoints: a restart from the same directory replays
/// nothing and serves the same state.
#[test]
fn orderly_shutdown_leaves_nothing_to_replay() {
    let dir = temp_dir("orderly");
    let service = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    for sql in ACADEMIC_LOG {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    let live = translation_bytes(&service, &papers_after_2000());
    service.shutdown();
    drop(service);

    let restarted = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        durable_config(),
    )
    .unwrap();
    let m = restarted.metrics();
    assert_eq!(m.wal_replayed, 0, "the shutdown checkpoint covered the log");
    assert_eq!(m.qfg_queries, 5);
    assert_eq!(translation_bytes(&restarted, &papers_after_2000()), live);
    fs::remove_dir_all(&dir).ok();
}
