//! Integration tests for the concurrent serving subsystem: live ingestion
//! sharpening translations, reads proceeding during ingestion, snapshot
//! persistence round-trips, and the host-system wire-through.

use nlidb::{NlidbSystem, Nlq, PipelineSystem};
use relational::{DataType, Database, Schema};
use sqlparse::{canon, parse_query, BinOp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use templar_core::{Keyword, KeywordMetadata, Obscurity, QueryLog, TemplarConfig};
use templar_service::{ServiceConfig, ServiceError, TemplarService};

fn academic_db() -> Arc<Database> {
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert(
        "publication",
        vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
    )
    .unwrap();
    db.insert(
        "publication",
        vec![2.into(), "Data Integration".into(), 1997.into(), 2.into()],
    )
    .unwrap();
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
    Arc::new(db)
}

fn papers_after_2000() -> Nlq {
    Nlq::new(
        "Return the papers after 2000",
        vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (
                Keyword::new("after 2000"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ],
        vec![],
    )
}

fn fast_refresh() -> ServiceConfig {
    ServiceConfig::default()
        .with_refresh_every(4)
        .with_refresh_interval(Duration::from_millis(20))
}

#[test]
fn ingested_queries_become_visible_and_sharpen_translations() {
    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        fast_refresh(),
    )
    .unwrap();
    assert_eq!(service.metrics().qfg_queries, 0);

    // Serve one translation against the empty-log snapshot.
    let before = service.translate(&papers_after_2000()).unwrap();

    // The service's own traffic gets logged back in.
    for sql in [
        "SELECT p.title FROM publication p WHERE p.year > 1995",
        "SELECT p.title FROM publication p WHERE p.year > 2010",
        "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
    ] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();

    let metrics = service.metrics();
    assert_eq!(metrics.ingest_applied, 3);
    assert_eq!(metrics.qfg_queries, 3, "snapshot must reflect the ingests");
    assert!(metrics.snapshot_swaps >= 1);
    assert!(metrics.qfg_fragments > 0);

    // With the log absorbed, the top translation is the paper's intended one.
    let after = service.translate(&papers_after_2000()).unwrap();
    assert!(!before.is_empty() && !after.is_empty());
    let gold = parse_query("SELECT p.title FROM publication p WHERE p.year > 2000").unwrap();
    assert!(
        canon::equivalent(&after[0].query, &gold),
        "top-1 after ingestion was: {}",
        after[0].query
    );

    let m = service.metrics();
    assert_eq!(m.translations_served, 2);
    assert!(m.translate_p50_us > 0);
    assert!(m.translate_p99_us >= m.translate_p50_us);
    // Both translations ran the best-first configuration search; the
    // academic requests fit comfortably inside the default budget, so the
    // rankings were provably exact.
    assert!(m.search_tuples_scored > 0);
    assert_eq!(m.search_budget_exhausted, 0);
    for candidate in &after {
        assert!(!candidate.explanation.search_budget_exhausted);
    }
}

#[test]
fn unparsable_ingests_are_counted_not_fatal() {
    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        fast_refresh(),
    )
    .unwrap();
    service.submit_sql("THIS IS NOT SQL AT ALL").unwrap();
    service
        .submit_sql("SELECT p.title FROM publication p")
        .unwrap();
    service.flush();
    let m = service.metrics();
    assert_eq!(m.ingest_parse_errors, 1);
    assert_eq!(m.ingest_applied, 1);
    assert_eq!(m.qfg_queries, 1);
    assert_eq!(m.ingest_lag, 0);
}

#[test]
fn reads_proceed_while_ingestion_is_in_flight() {
    let service = Arc::new(
        TemplarService::spawn(
            academic_db(),
            &QueryLog::new(),
            TemplarConfig::paper_defaults(),
            // Swap on every applied entry to maximise rebuild pressure.
            ServiceConfig::default()
                .with_refresh_every(1)
                .with_refresh_interval(Duration::from_millis(1))
                .with_queue_capacity(10_000),
        )
        .unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let reads_done = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let reads_done = Arc::clone(&reads_done);
            std::thread::spawn(move || {
                let nlq = papers_after_2000();
                while !stop.load(Ordering::Relaxed) {
                    let results = service.translate(&nlq);
                    assert!(results.is_ok(), "translation must not fail mid-ingest");
                    reads_done.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Hammer ingestion while the readers run.
    for i in 0..300 {
        let year = 1980 + (i % 40);
        let _ = service.submit_sql(&format!(
            "SELECT p.title FROM publication p WHERE p.year > {year}"
        ));
    }
    service.flush();
    let reads_during_ingest = reads_done.load(Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let m = service.metrics();
    assert!(
        reads_during_ingest > 0,
        "readers must make progress while snapshots are being rebuilt"
    );
    assert!(m.snapshot_swaps >= 1);
    assert_eq!(m.ingest_lag, 0);
    assert_eq!(m.qfg_queries, m.ingest_applied);
}

#[test]
fn log_eviction_bounds_the_graph() {
    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        fast_refresh().with_max_log_entries(5),
    )
    .unwrap();
    for i in 0..20 {
        service
            .submit_sql(&format!(
                "SELECT p.title FROM publication p WHERE p.year > {}",
                1990 + i
            ))
            .unwrap();
    }
    service.flush();
    let m = service.metrics();
    assert_eq!(m.ingest_applied, 20);
    assert_eq!(m.log_evictions, 15);
    assert_eq!(m.qfg_queries, 5, "evicted queries must leave the QFG");
}

#[test]
fn snapshot_round_trip_restores_the_serving_state() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("templar-svc-snap-{}.snap", std::process::id()));

    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        fast_refresh(),
    )
    .unwrap();
    for sql in [
        "SELECT p.title FROM publication p WHERE p.year > 1995",
        "SELECT j.name FROM journal j",
        "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
    ] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    service.save_snapshot(&path).unwrap();
    let saved_metrics = service.metrics();
    drop(service);

    let restored = TemplarService::spawn_from_snapshot(
        academic_db(),
        &path,
        TemplarConfig::paper_defaults(),
        fast_refresh(),
    )
    .unwrap();
    let m = restored.metrics();
    assert_eq!(m.qfg_queries, saved_metrics.qfg_queries);
    assert_eq!(m.qfg_fragments, saved_metrics.qfg_fragments);
    assert_eq!(m.qfg_edges, saved_metrics.qfg_edges);

    // The restored service serves the same translation.
    let results = restored.translate(&papers_after_2000()).unwrap();
    let gold = parse_query("SELECT p.title FROM publication p WHERE p.year > 2000").unwrap();
    assert!(canon::equivalent(&results[0].query, &gold));

    // And keeps ingesting from where it left off.
    restored
        .submit_sql("SELECT p.title FROM publication p WHERE p.year > 2015")
        .unwrap();
    restored.flush();
    assert_eq!(
        restored.metrics().qfg_queries,
        saved_metrics.qfg_queries + 1
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn spawn_from_sql_counts_skipped_statements() {
    let service = TemplarService::spawn_from_sql(
        academic_db(),
        [
            "SELECT p.title FROM publication p WHERE p.year > 1995",
            "% totally not SQL %",
            "SELECT j.name FROM journal j",
            "ALSO NOT SQL",
        ],
        TemplarConfig::paper_defaults(),
        fast_refresh(),
    )
    .unwrap();
    let m = service.metrics();
    assert_eq!(m.log_skipped_statements, 2);
    assert_eq!(m.qfg_queries, 2);
    // The live-path parse-error counter stays independent.
    assert_eq!(m.ingest_parse_errors, 0);
    // Columnar gauges are populated: a published snapshot is compacted.
    assert_eq!(m.qfg_pending_deltas, 0);
    assert!(m.qfg_interned_fragments >= m.qfg_fragments);
    assert_eq!(m.qfg_csr_edges, m.qfg_edges);
    assert!(m.qfg_compactions >= 1);
}

#[test]
fn snapshot_with_wrong_obscurity_is_refused() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("templar-svc-obsc-{}.snap", std::process::id()));

    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults().with_obscurity(Obscurity::NoConst),
        fast_refresh(),
    )
    .unwrap();
    service
        .submit_sql("SELECT p.title FROM publication p")
        .unwrap();
    service.flush();
    service.save_snapshot(&path).unwrap();
    drop(service);

    let err = TemplarService::spawn_from_snapshot(
        academic_db(),
        &path,
        TemplarConfig::paper_defaults().with_obscurity(Obscurity::NoConstOp),
        fast_refresh(),
    )
    .err()
    .expect("obscurity mismatch must be rejected");
    assert!(matches!(err, ServiceError::Snapshot(_)), "got: {err}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn host_systems_ride_the_live_handle() {
    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        fast_refresh(),
    )
    .unwrap();
    let system = PipelineSystem::serving(service.handle());
    assert_eq!(system.name(), "Pipeline+live");

    let before_qfg = system.templar().qfg().query_count();
    assert_eq!(before_qfg, 0);

    for sql in [
        "SELECT p.title FROM publication p WHERE p.year > 1995",
        "SELECT p.title FROM publication p WHERE p.year > 2010",
    ] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();

    // Without reconstruction, the same system object now sees the refreshed
    // snapshot and translates with log evidence.
    assert_eq!(system.templar().qfg().query_count(), 2);
    let results = system.translate(&papers_after_2000()).unwrap();
    let gold = parse_query("SELECT p.title FROM publication p WHERE p.year > 2000").unwrap();
    assert!(
        canon::equivalent(&results[0].query, &gold),
        "top-1 was: {}",
        results[0].query
    );
}

#[test]
fn shutdown_publishes_pending_ingests() {
    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        // Refresh thresholds the test will NOT reach before shutdown.
        ServiceConfig::default()
            .with_refresh_every(1_000_000)
            .with_refresh_interval(Duration::from_secs(3600)),
    )
    .unwrap();
    let handle = service.handle();
    service
        .submit_sql("SELECT p.title FROM publication p")
        .unwrap();
    service.shutdown();
    assert_eq!(
        handle.load().qfg().query_count(),
        1,
        "shutdown must flush pending entries into a final snapshot"
    );
}

#[test]
fn translation_cache_hits_are_byte_identical_and_publish_invalidates() {
    use templar_api::TranslateRequest;

    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        fast_refresh(),
    )
    .unwrap();
    let nlq = papers_after_2000();
    let request = TranslateRequest::new("academic", &nlq.text, nlq.keywords.clone());

    // First request computes and populates; the repeat is served cached.
    let computed = service.translate_request(&request).unwrap();
    let cached = service.translate_request(&request).unwrap();
    // Byte-identity: identical as structs AND as encoded wire bytes.
    assert_eq!(cached, computed);
    assert_eq!(
        serde_json::to_string(&cached).unwrap(),
        serde_json::to_string(&computed).unwrap()
    );
    // A forced recompute at the same epoch proves the cached answer is the
    // same bytes the live snapshot would produce right now.
    let recomputed = service
        .translate_request(&request.clone().with_bypass_cache())
        .unwrap();
    assert_eq!(cached, recomputed);

    let m = service.metrics();
    assert_eq!(m.translation_cache_hits, 1);
    assert_eq!(m.translation_cache_misses, 1, "bypass must not count");
    assert_eq!(m.translation_cache_entries, 1);
    assert_eq!(m.translation_cache_invalidations, 0);
    assert_eq!(m.translations_served, 3, "hits still count as served");

    // The capture ring marks the cache-served request.
    let slow = service.slow_queries();
    assert!(slow.iter().any(|r| r.cache_hit));
    assert!(slow.iter().any(|r| !r.cache_hit));

    // A traced hit ships a trace marked cache_hit.
    let traced = service
        .translate_request(&request.clone().with_trace())
        .unwrap();
    assert!(traced.trace.expect("trace requested").cache_hit);

    // Publishing a new snapshot invalidates wholesale: the same question
    // must be freshly computed against the new log evidence, never stale.
    for sql in [
        "SELECT p.title FROM publication p WHERE p.year > 1995",
        "SELECT p.title FROM publication p WHERE p.year > 2010",
        "SELECT p.title FROM publication p WHERE p.year > 2005",
        "SELECT p.title FROM publication p WHERE p.year > 2001",
    ] {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    let m = service.metrics();
    assert!(m.translation_cache_invalidations >= 1);
    assert_eq!(m.translation_cache_entries, 0, "publish clears the cache");

    let fresh = service.translate_request(&request).unwrap();
    let fresh_forced = service
        .translate_request(&request.clone().with_bypass_cache())
        .unwrap();
    assert_eq!(
        fresh, fresh_forced,
        "post-publish answer must match a forced recompute on the new snapshot"
    );
    assert_ne!(
        fresh.candidates[0].score, computed.candidates[0].score,
        "the new log evidence must actually reshape the ranking"
    );
    service.shutdown();
}

#[test]
fn translation_cache_works_over_the_wire_with_bypass_flag() {
    use templar_api::TranslateRequest;
    use templar_service::{RegistryClient, TenantRegistry};

    let registry = TenantRegistry::new();
    registry.register(
        "academic",
        TemplarService::spawn(
            academic_db(),
            &QueryLog::new(),
            TemplarConfig::paper_defaults(),
            fast_refresh(),
        )
        .unwrap(),
    );
    let client = RegistryClient::new(&registry);
    let nlq = papers_after_2000();
    let request = TranslateRequest::new("academic", &nlq.text, nlq.keywords.clone());

    let computed = client.translate(request.clone()).unwrap();
    let cached = client.translate(request.clone()).unwrap();
    let bypassed = client
        .translate(request.clone().with_bypass_cache())
        .unwrap();
    assert_eq!(cached, computed);
    assert_eq!(cached, bypassed);

    // Cache and memo counters ride the wire projection.
    let report = client.metrics("academic").unwrap();
    assert_eq!(report.translation_cache_hits, 1);
    assert_eq!(report.translation_cache_misses, 1);
    assert_eq!(report.translation_cache_entries, 1);
    assert!(
        report.word_memo_hits + report.word_memo_misses > 0,
        "translations must touch the word-vector memo"
    );

    // …and the Prometheus exposition carries the new families.
    let text = client.prometheus(Some("academic")).unwrap();
    assert!(text.contains("templar_translation_cache_hits_total{tenant=\"academic\"} 1"));
    assert!(text.contains("templar_translation_cache_entries{tenant=\"academic\"} 1"));
    assert!(text.contains("templar_word_memo_hits_total{tenant=\"academic\"}"));
    assert!(text.contains("templar_phrase_memo_misses_total{tenant=\"academic\"}"));
}

#[test]
fn batched_concurrent_translations_match_solo_execution_byte_for_byte() {
    use templar_api::TranslateRequest;

    let service = Arc::new(
        TemplarService::spawn_from_sql(
            academic_db(),
            [
                "SELECT p.title FROM publication p WHERE p.year > 1995",
                "SELECT p.title FROM publication p WHERE p.year > 2010",
                "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
            ],
            TemplarConfig::paper_defaults(),
            fast_refresh(),
        )
        .unwrap(),
    );

    let nlq = papers_after_2000();
    let variants: Vec<TranslateRequest> = vec![
        TranslateRequest::new("academic", &nlq.text, nlq.keywords.clone()).with_bypass_cache(),
        TranslateRequest::new("academic", &nlq.text, nlq.keywords.clone())
            .with_bypass_cache()
            .with_lambda(0.3),
        TranslateRequest::new("academic", &nlq.text, nlq.keywords.clone())
            .with_bypass_cache()
            .with_top_k(1),
    ];

    // Solo baselines: sequential requests each start (and drain) their own
    // batch, so no cross-request sharing is possible here.
    let solo: Vec<_> = variants
        .iter()
        .map(|r| service.translate_request(r).unwrap())
        .collect();
    let solo_bytes: Vec<String> = solo
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();

    // Concurrent storm: many in-flight requests coalesce into one batch and
    // share pruned candidate lists, yet every response must be the same
    // bytes solo execution produced — overrides included.
    let threads: Vec<_> = (0..12)
        .map(|i| {
            let service = Arc::clone(&service);
            let request = variants[i % variants.len()].clone();
            let expected = solo_bytes[i % variants.len()].clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    let got = service.translate_request(&request).unwrap();
                    assert_eq!(serde_json::to_string(&got).unwrap(), expected);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    service.shutdown();
}

#[test]
fn admission_quota_sheds_with_typed_backpressure_and_counters() {
    use templar_service::TenantRegistry;

    let registry = TenantRegistry::new();
    let service = registry.register(
        "academic",
        TemplarService::spawn(
            academic_db(),
            &QueryLog::new(),
            TemplarConfig::paper_defaults(),
            ServiceConfig::default().with_max_inflight(2),
        )
        .unwrap(),
    );

    // Two permits fit the quota; the third sheds and is counted.
    let first = service.try_admit().expect("first slot fits");
    let _second = service.try_admit().expect("second slot fits");
    assert_eq!(service.inflight(), 2);
    assert!(
        service.try_admit().is_none(),
        "quota of 2 must shed the 3rd"
    );
    assert!(matches!(
        registry.admit("academic"),
        Err(templar_api::ApiError::Backpressure)
    ));

    // While the quota is full, an admission-controlled line is shed typed…
    let line = r#"{"version": 5, "id": 5, "body": {"SubmitSql": {"tenant": "academic", "sql": "SELECT p.title FROM publication p"}}}"#;
    let response = registry.handle_line(line);
    assert!(
        response.contains("Backpressure"),
        "full quota must surface as Backpressure: {response}"
    );
    // …while observability reads stay exempt from admission control.
    let metrics_line = r#"{"version": 5, "id": 6, "body": {"Metrics": {"tenant": "academic"}}}"#;
    assert!(registry.handle_line(metrics_line).contains("\"ok\""));

    // Dropping a permit frees its slot.
    drop(first);
    assert_eq!(service.inflight(), 1);
    assert!(service.try_admit().is_some());

    // Global-cap sheds are attributed to the tenant alongside quota sheds.
    registry.record_global_shed("academic");
    let snap = service.metrics();
    assert_eq!(snap.admission_tenant_shed, 3); // try_admit + registry.admit + handle_line
    assert_eq!(snap.admission_global_shed, 1);

    // Both counters are visible in the Prometheus exposition.
    let text = registry.prometheus(Some("academic")).unwrap();
    assert!(text.contains("templar_admission_tenant_shed_total{tenant=\"academic\"} 3"));
    assert!(text.contains("templar_admission_global_shed_total{tenant=\"academic\"} 1"));

    service.shutdown();
}
