//! The chaos matrix: every filesystem operation the durable paths perform
//! is enumerated with a counting [`FaultyStorage`] pass, then failed — once
//! and forever — while the invariants are asserted at each site:
//!
//! * **never a wrong answer** — a service that stays up serves translations
//!   byte-identical to the unfaulted reference; a service that refuses does
//!   so with a typed error, never a panic,
//! * **self-healing** — after the fault clears ([`FaultyStorage::clear`],
//!   the disk coming back), recovery or checkpointing succeeds and the
//!   state is byte-identical to the acknowledged pre-fault state,
//! * **degraded read-only mode** — a journal that keeps failing past the
//!   bounded in-line retries flips the service to `Degraded`: ingestion is
//!   refused with [`ServiceError::Degraded`], translations and metrics keep
//!   serving, and the background probe restores `Healthy` once the fault
//!   clears.

use nlidb::Nlq;
use nlp::TextSimilarity;
use relational::{DataType, Database, Schema};
use sqlparse::BinOp;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use templar_core::{Keyword, KeywordMetadata, TemplarConfig};
use templar_service::{
    FaultRule, FaultyStorage, HealthState, ServiceConfig, ServiceError, Storage, StorageOp,
    TemplarService,
};

/// Every fault site the matrix sweeps.  `StorageOp` is a closed set; listing
/// it here keeps the sweep exhaustive by construction (a new operation added
/// to the trait shows up as a zero-count site until the paths use it).
const ALL_OPS: [StorageOp; 15] = [
    StorageOp::CreateDir,
    StorageOp::Create,
    StorageOp::OpenWrite,
    StorageOp::OpenRead,
    StorageOp::ReadFile,
    StorageOp::ListDir,
    StorageOp::Write,
    StorageOp::SyncData,
    StorageOp::SyncAll,
    StorageOp::SetLen,
    StorageOp::Rename,
    StorageOp::RemoveFile,
    StorageOp::SyncDir,
    StorageOp::Lock,
    StorageOp::Len,
];

const EIO: i32 = 5;
const ENOSPC: i32 = 28;

fn academic_db() -> Arc<Database> {
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert(
        "publication",
        vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
    )
    .unwrap();
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    Arc::new(db)
}

fn papers_after_2000() -> Nlq {
    Nlq::new(
        "Return the papers after 2000",
        vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (
                Keyword::new("after 2000"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ],
        vec![],
    )
}

const ACADEMIC_LOG: [&str; 5] = [
    "SELECT p.title FROM publication p WHERE p.year > 1995",
    "SELECT p.title FROM publication p WHERE p.year > 2010",
    "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
    "SELECT j.name FROM journal j",
    "SELECT p.title FROM publication p WHERE p.year > 2001",
];

/// Durable config with per-record fsync and fast, bounded journal retries —
/// the matrix should spend its wall-clock on fault sites, not on backoff.
fn chaos_config() -> ServiceConfig {
    ServiceConfig::default()
        .with_refresh_every(4)
        .with_refresh_interval(Duration::from_millis(10))
        .with_wal_fsync_every(1)
        .with_journal_retry_attempts(2)
        .with_journal_retry_base_backoff(Duration::from_millis(1))
        .with_journal_retry_max_backoff(Duration::from_millis(4))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("templar-chaos-{}-{name}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn translation_bytes(service: &TemplarService, nlq: &Nlq) -> Vec<(String, u64)> {
    service
        .translate(nlq)
        .unwrap()
        .iter()
        .map(|r| (r.query.to_string(), r.score.to_bits()))
        .collect()
}

fn recover_with(dir: &Path, storage: Arc<dyn Storage>) -> Result<TemplarService, ServiceError> {
    TemplarService::recover_with_storage(
        academic_db(),
        dir,
        storage,
        TextSimilarity::new(),
        TemplarConfig::paper_defaults(),
        chaos_config(),
    )
}

/// Build a checkpointed durable image: journal + snapshot + sealed state.
fn populated_image(name: &str) -> PathBuf {
    let dir = temp_dir(name);
    let service = recover_with(&dir, FaultyStorage::new()).unwrap();
    for sql in ACADEMIC_LOG {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    service.checkpoint().unwrap();
    drop(service);
    dir
}

fn poll_health(service: &TemplarService, want: HealthState, deadline: Duration) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        if service.health_state() == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    service.health_state() == want
}

/// Fail every filesystem operation of the **recovery path**, once and
/// forever, at every call index.  A faulted recovery must either come up
/// answering byte-identically or refuse with a typed error — and after the
/// fault clears, the *same* storage must recover byte-identically.
#[test]
fn recovery_fault_matrix_is_typed_and_heals_byte_identically() {
    let image = populated_image("recovery-matrix-image");

    // Reference: what a clean recovery of this image answers, and how many
    // times recovery issues each operation (the fault-site enumeration).
    let counting = FaultyStorage::new();
    let reference = {
        let probe = temp_dir("recovery-matrix-ref");
        copy_dir(&image, &probe);
        let service = recover_with(&probe, counting.clone()).unwrap();
        let bytes = translation_bytes(&service, &papers_after_2000());
        let queries = service.metrics().qfg_queries;
        drop(service);
        fs::remove_dir_all(&probe).ok();
        (bytes, queries)
    };

    let mut sites = 0u64;
    for op in ALL_OPS {
        let count = counting.op_count(op);
        for index in 0..count {
            for forever in [false, true] {
                sites += 1;
                let case = format!("op {op:?} index {index} forever {forever}");
                let dir = temp_dir("recovery-matrix-case");
                copy_dir(&image, &dir);
                let storage = FaultyStorage::new();
                storage.inject(if forever {
                    FaultRule::forever(op, index, EIO)
                } else {
                    FaultRule::once(op, index, ENOSPC)
                });
                let shared: Arc<dyn Storage> = storage.clone();
                match recover_with(&dir, Arc::clone(&shared)) {
                    Ok(service) => {
                        // Absorbed the fault: answers must be right anyway.
                        assert_eq!(
                            translation_bytes(&service, &papers_after_2000()),
                            reference.0,
                            "{case}: survived recovery must answer byte-identically"
                        );
                        assert_eq!(service.metrics().qfg_queries, reference.1, "{case}");
                        drop(service);
                    }
                    Err(error) => {
                        // Refused: must be typed, and the storage healing
                        // must make the next recovery whole.
                        let _typed: ServiceError = error;
                        storage.clear();
                        let healed = recover_with(&dir, shared)
                            .unwrap_or_else(|e| panic!("{case}: heal failed: {e}"));
                        assert_eq!(
                            translation_bytes(&healed, &papers_after_2000()),
                            reference.0,
                            "{case}: healed recovery must answer byte-identically"
                        );
                        assert_eq!(healed.metrics().qfg_queries, reference.1, "{case}");
                    }
                }
                fs::remove_dir_all(&dir).ok();
            }
        }
    }
    assert!(
        sites >= 16,
        "the recovery path must traverse a meaningful fault surface, saw {sites} cases"
    );
    fs::remove_dir_all(&image).ok();
}

/// Fail every filesystem operation of a steady-state **checkpoint** at every
/// call index.  A faulted checkpoint must return a typed error or absorb the
/// fault; translations keep serving unchanged throughout; after the fault
/// clears a checkpoint succeeds; and the directory always recovers
/// byte-identically.
#[test]
fn checkpoint_fault_matrix_never_corrupts_the_durable_directory() {
    let dir = temp_dir("checkpoint-matrix");
    let storage = FaultyStorage::new();
    let service = recover_with(&dir, storage.clone()).unwrap();
    for sql in ACADEMIC_LOG {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    service.checkpoint().unwrap();
    let reference = translation_bytes(&service, &papers_after_2000());

    // Enumerate one steady-state checkpoint (no new entries: the operation
    // schedule is deterministic).
    storage.reset_counts();
    service.checkpoint().unwrap();
    let per_op: Vec<(StorageOp, u64)> = ALL_OPS
        .iter()
        .map(|&op| (op, storage.op_count(op)))
        .collect();

    let mut sites = 0u64;
    for &(op, count) in &per_op {
        for index in 0..count {
            sites += 1;
            let case = format!("op {op:?} index {index}");
            storage.reset_counts();
            storage.inject(FaultRule::once(op, index, ENOSPC));
            match service.checkpoint() {
                // Absorbed (e.g. a GC deletion failure is deferred, not
                // fatal) — fine, as long as nothing panicked.
                Ok(_) => {}
                Err(error) => {
                    let _typed: ServiceError = error;
                }
            }
            assert_eq!(
                translation_bytes(&service, &papers_after_2000()),
                reference,
                "{case}: translations must keep serving unchanged under a checkpoint fault"
            );
            // The disk comes back: the next checkpoint must succeed.
            storage.clear();
            service
                .checkpoint()
                .unwrap_or_else(|e| panic!("{case}: post-fault checkpoint failed: {e}"));
        }
    }
    // One steady-state checkpoint touches the whole snapshot publish chain:
    // temp-file create, body write, fsync, rename, directory fsync, GC
    // listing.  (The WAL write/fsync sites are swept by the journal matrix
    // in `wal.rs` and the degrade/heal test below.)
    assert!(
        sites >= 6,
        "the checkpoint path must traverse a meaningful fault surface, saw {sites} cases"
    );
    drop(service);

    // Whatever the matrix left on disk recovers byte-identically.
    let recovered = recover_with(&dir, FaultyStorage::new()).unwrap();
    assert_eq!(
        translation_bytes(&recovered, &papers_after_2000()),
        reference,
        "the durable directory must recover byte-identically after the whole matrix"
    );
    drop(recovered);
    fs::remove_dir_all(&dir).ok();
}

/// The tentpole state machine end to end: a persistently failing journal
/// fsync exhausts the bounded in-line retries and flips the service to
/// degraded read-only mode — ingestion refused with a typed
/// [`ServiceError::Degraded`], translations still serving — then the
/// background probe heals it the moment the disk comes back, the staged
/// journal tail is replayed, and a recovery of the directory matches a
/// never-faulted twin byte-for-byte.
#[test]
fn journal_failure_degrades_to_read_only_and_heals() {
    let dir = temp_dir("degrade-heal");
    let storage = FaultyStorage::new();
    let service = recover_with(&dir, storage.clone()).unwrap();
    for sql in ACADEMIC_LOG {
        service.submit_sql(sql).unwrap();
    }
    service.flush();
    assert_eq!(service.health_state(), HealthState::Healthy);

    // The disk dies: every fsync fails from now on.  The rules are aimed at
    // the *next* matching call, whatever the counters already absorbed.
    storage.inject(FaultRule {
        op: StorageOp::SyncData,
        after: storage.op_count(StorageOp::SyncData),
        errno: EIO,
        forever: true,
        halt: false,
        short_write: None,
    });
    storage.inject(FaultRule {
        op: StorageOp::SyncAll,
        after: storage.op_count(StorageOp::SyncAll),
        errno: EIO,
        forever: true,
        halt: false,
        short_write: None,
    });

    // This entry is accepted while healthy; journaling it trips the fault.
    let tripping = "SELECT p.title FROM publication p WHERE p.year > 1999";
    service.submit_sql(tripping).unwrap();
    assert!(
        poll_health(&service, HealthState::Degraded, Duration::from_secs(10)),
        "exhausted journal retries must degrade the service"
    );

    // Degraded: writes refused with the typed error, reads keep serving,
    // metrics and health stay observable.
    let refused = service
        .submit_sql("SELECT j.name FROM journal j")
        .unwrap_err();
    assert!(matches!(refused, ServiceError::Degraded), "got {refused:?}");
    let live = translation_bytes(&service, &papers_after_2000());
    assert!(!live.is_empty(), "translations must keep serving degraded");
    let snapshot = service.metrics();
    assert_eq!(snapshot.health_state, 1);
    assert!(snapshot.degraded_entries_total >= 1);
    assert!(snapshot.journal_retries_total >= 1);
    assert_eq!(
        snapshot.wal_io_errors, 1,
        "a single failure episode counts once, however many retries it absorbed"
    );
    assert_eq!(
        snapshot.wal_last_errno,
        EIO as u64 + 1,
        "the episode's errno is surfaced (stored as errno+1; 0 = none)"
    );

    // The disk comes back: the probe must heal without intervention.
    storage.clear();
    assert!(
        poll_health(&service, HealthState::Healthy, Duration::from_secs(10)),
        "the background probe must restore write availability"
    );
    let healed = service.metrics();
    assert!(healed.journal_heals_total >= 1);
    assert_eq!(healed.health_state, 0);

    // Writes are accepted again, and the staged tail survived the outage.
    let after_heal = "SELECT p.year FROM publication p";
    service.submit_sql(after_heal).unwrap();
    service.flush();
    service.checkpoint().unwrap();
    let live = translation_bytes(&service, &papers_after_2000());
    drop(service);

    // A recovery of the directory sees every acknowledged entry...
    let recovered = recover_with(&dir, FaultyStorage::new()).unwrap();
    assert_eq!(
        translation_bytes(&recovered, &papers_after_2000()),
        live,
        "recovery after the outage must be byte-identical to the live service"
    );
    // ...and matches a twin that never saw a fault, fed the same
    // acknowledged log.
    let twin_dir = temp_dir("degrade-heal-twin");
    let twin = recover_with(&twin_dir, FaultyStorage::new()).unwrap();
    for sql in ACADEMIC_LOG.iter().copied().chain([tripping, after_heal]) {
        twin.submit_sql(sql).unwrap();
    }
    twin.flush();
    assert_eq!(
        translation_bytes(&twin, &papers_after_2000()),
        live,
        "the healed service must match a never-faulted twin byte-for-byte"
    );
    assert_eq!(recovered.metrics().qfg_queries, twin.metrics().qfg_queries);
    drop((recovered, twin));
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&twin_dir).ok();
}
