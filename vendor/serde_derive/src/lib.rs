//! Vendored minimal `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! its own tiny serde implementation (see `vendor/serde`).  This crate
//! provides the `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! it, written against `proc_macro` alone (no `syn`/`quote`): the item is
//! parsed by hand into a small shape description and the generated impls are
//! rendered as source text.
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields,
//! * tuple and unit structs,
//! * enums with unit, tuple and struct variants.
//!
//! Generics are deliberately unsupported (no workspace type needs them); the
//! macro panics with a clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input looks like, reduced to what codegen needs.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    render(gen_serialize(&shape))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    render(gen_deserialize(&shape))
}

fn render(src: String) -> TokenStream {
    src.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{src}"))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`# [ ... ]`) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` and friends carry a parenthesised group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Field names of a named-field body.  A field is: attributes, optional
/// visibility, `name : Type`, where the type runs until a comma at angle
/// depth zero (commas inside `HashMap<K, V>` are not field separators).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        fields.push(id.to_string());
        // Skip `: Type` until a top-level comma.
        let mut depth: i64 = 0;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut depth: i64 = 0;
    let mut saw_token = false;
    for tok in stream {
        saw_token = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if !saw_token {
        0
    } else {
        // `(A, B)` has one separating comma; `(A, B,)` ends with one.
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        let name = id.to_string();
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the comma separating variants (covers `= discr` if ever used).
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// `a` → tuple-field binder name `f_a` safe for match arms.
fn binders(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("f{i}")).collect()
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            let body = if *arity == 1 {
                // Newtype structs serialize transparently, serde-style.
                items[0].clone()
            } else {
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds = binders(*arity);
                            let payload = if *arity == 1 {
                                format!("::serde::Serialize::to_value({})", binds[0])
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), {payload})])",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::map_field(entries, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let entries = value.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::seq_item(items, {i}, \"{name}\")?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                             let items = value.as_seq().ok_or_else(|| ::serde::Error::expected(\"seq\", \"{name}\"))?;\n\
                             ::std::result::Result::Ok({name}({}))\n\
                         }}\n\
                     }}",
                    inits.join(", ")
                )
            }
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => Some(if *arity == 1 {
                            format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?))"
                            )
                        } else {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::seq_item(items, {i}, \"{name}::{vname}\")?"))
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let items = payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"seq\", \"{name}::{vname}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }),
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::map_field(entries, \"{f}\", \"{name}::{vname}\")?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let entries = payload.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}::{vname}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit}\n\
                                 other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, payload) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {data}\n\
                                     other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::expected(\"enum value\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    data_arms.join(",\n") + ","
                },
            )
        }
    }
}
