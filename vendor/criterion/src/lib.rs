//! Vendored minimal `criterion`.
//!
//! A wall-clock benchmark harness with criterion's API shape
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `sample_size` + `finish`, `Bencher::iter`,
//! `black_box`) but none of its statistics machinery: each benchmark runs a
//! short warm-up, then timed batches until a time budget is spent, and
//! reports the mean, min and max time per iteration.
//!
//! Good enough to compare orders of magnitude and to verify that benches
//! compile and run; not a substitute for criterion's confidence intervals.
//!
//! Like real criterion, passing `--test` to the bench binary
//! (`cargo bench -- --test`) switches to **smoke mode**: every benchmark
//! body runs exactly once, unmeasured.  CI uses this to prove the benches
//! compile and execute on every change without paying measurement time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Re-exported std black box.
pub use std::hint::black_box;

/// Smoke mode: run each benchmark body once, skip warm-up and measurement.
static SMOKE_MODE: AtomicBool = AtomicBool::new(false);

/// Inspect the bench binary's CLI arguments; called by [`criterion_main!`].
/// Recognizes criterion's `--test` flag (smoke mode).
#[doc(hidden)]
pub fn configure_from_args() {
    if std::env::args().any(|arg| arg == "--test") {
        SMOKE_MODE.store(true, Ordering::Relaxed);
    }
}

fn smoke_mode() -> bool {
    SMOKE_MODE.load(Ordering::Relaxed)
}

/// Target measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` performs the measurement.
pub struct Bencher {
    sample_size: usize,
    /// (total elapsed, iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if smoke_mode() {
            // Smoke mode: execute the body once so panics and logic errors
            // surface, without timing anything.
            black_box(f());
            self.measured = Some((Duration::ZERO, 0));
            return;
        }
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= WARMUP_BUDGET || warmup_iters >= 1000 {
                break;
            }
        }
        // Measurement: timed batches until the budget or the sample target is
        // reached.  The batch size adapts so very fast bodies are not
        // dominated by clock reads.
        let per_iter = warmup_start.elapsed() / warmup_iters as u32;
        let batch = if per_iter > Duration::from_millis(10) {
            1
        } else {
            ((Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)) as u64)
                .clamp(1, 10_000)
        };
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut samples: usize = 0;
        while total < MEASURE_BUDGET && samples < self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
            samples += 1;
        }
        self.measured = Some((total, iters));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some((_, 0)) if smoke_mode() => {
            println!("{id:<50} (smoke: ran once, unmeasured)");
            emit_json(id, None, 0);
        }
        Some((total, iters)) if iters > 0 => {
            let mean = total.as_nanos() as f64 / iters as f64;
            println!(
                "{id:<50} time: [{} per iter, {iters} iters]",
                format_ns(mean)
            );
            emit_json(id, Some(mean), iters);
        }
        _ => println!("{id:<50} (no measurement: closure never called iter)"),
    }
}

/// With `BENCH_JSON=1` in the environment, every result is additionally
/// printed as a `BENCHJSON {...}` line — one JSON object per benchmark —
/// so tooling (`tools/bench_snapshot.sh`) can collect means into a
/// machine-readable snapshot without parsing the human-format output.
/// Smoke-mode runs emit `"mean_ns": null`.
fn emit_json(id: &str, mean_ns: Option<f64>, iters: u64) {
    if std::env::var_os("BENCH_JSON").is_none() {
        return;
    }
    let mean = match mean_ns {
        Some(ns) => format!("{ns:.1}"),
        None => "null".to_string(),
    };
    println!("BENCHJSON {{\"id\":\"{id}\",\"mean_ns\":{mean},\"iters\":{iters}}}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (honouring `--test` smoke mode).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::configure_from_args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(5);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(2u64.pow(10)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
