//! Vendored minimal `proptest`.
//!
//! Deterministic property-based testing with the API surface the workspace
//! tests use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_filter`, `prop_oneof!`, `Just`, `any::<bool>()`, integer-range
//! strategies, regex-literal string strategies (a small subset of regex:
//! char classes, `.`, and `{m,n}` / `?` / `+` / `*` quantifiers),
//! `proptest::option::of` and `proptest::collection::vec`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs via the normal assertion message), a fixed case count
//! per property, and generation is seeded from the property name, so runs
//! are reproducible.

use std::ops::Range;

/// Cases generated per property.
pub const CASES: usize = 64;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator used by strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed from a property name (FNV-1a), so each property gets a stable,
    /// distinct stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// An erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: rejection sampling with a bounded retry budget.
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

// Integer ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy form of [`Arbitrary`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
);

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// One atom of the regex subset, with its repetition bounds.
struct Atom {
    chars: CharSource,
    min: usize,
    max: usize,
}

enum CharSource {
    /// Explicit alternatives from a `[...]` class (or a literal char).
    Choices(Vec<char>),
    /// `.`: printable ASCII.
    AnyPrintable,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let source = match chars[i] {
            '[' => {
                let mut choices = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "bad char range in `{pattern}`");
                        for c in lo..=hi {
                            choices.push(char::from_u32(c).unwrap());
                        }
                        i += 3;
                    } else {
                        let mut c = chars[i];
                        if c == '\\' && i + 1 < chars.len() {
                            i += 1;
                            c = chars[i];
                        }
                        choices.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in `{pattern}`");
                i += 1; // `]`
                CharSource::Choices(choices)
            }
            '.' => {
                i += 1;
                CharSource::AnyPrintable
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in `{pattern}`");
                let c = chars[i + 1];
                i += 2;
                CharSource::Choices(vec![c])
            }
            c => {
                i += 1;
                CharSource::Choices(vec![c])
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated quantifier in `{pattern}`"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: source,
            min,
            max,
        });
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        let count = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..count {
            let c = match &atom.chars {
                CharSource::Choices(choices) => choices[rng.below(choices.len())],
                CharSource::AnyPrintable => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
            };
            out.push(c);
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Submodules mirroring proptest's layout
// ---------------------------------------------------------------------------

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OfStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 1-in-4 None, like proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(strategy: S) -> OfStrategy<S> {
        OfStrategy { inner: strategy }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy, TestRng,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests.  Each body runs [`CASES`] times with fresh inputs
/// drawn from the given strategies; the stream is seeded from the property
/// name so failures are reproducible.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn dot_and_fixed_quantifiers() {
        let mut rng = TestRng::from_seed(2);
        let s = generate_from_pattern("a{3}.{0,5}", &mut rng);
        assert!(s.starts_with("aaa"));
        assert!(s.len() <= 8);
    }

    #[test]
    fn union_and_adapters_compose() {
        let mut rng = TestRng::from_seed(3);
        let strat = prop_oneof![(0i64..10).prop_map(|n| n * 2), Just(99i64),];
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 20));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u32..100, flip in crate::any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }
}
