//! Vendored minimal `rand`.
//!
//! A deterministic splitmix64 generator behind the `Rng` / `SeedableRng`
//! trait surface the workspace uses (`StdRng::seed_from_u64`,
//! `rng.gen_range(a..b)`, `shuffle`).  The stream differs from upstream
//! rand's ChaCha-based `StdRng`, which is fine: the workspace uses seeded
//! randomness only to generate synthetic datasets and test inputs, and
//! defines its own ground truth.

pub mod rngs {
    /// The standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Core random-value methods.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..(i + 1));
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5..80);
            assert!((5..80).contains(&v));
            let u = rng.gen_range(0u64..1000);
            assert!(u < 1000);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
