//! Vendored minimal `parking_lot`.
//!
//! Thin wrappers over `std::sync` that reproduce the parking_lot API shape
//! the workspace uses: locks whose guards come back directly (no
//! `LockResult`), recovering from poisoning instead of propagating it.  The
//! real crate's raw-futex fast path is not reproduced; `std`'s locks are
//! plenty for the workloads here.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards come back directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
