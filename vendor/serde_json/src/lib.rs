//! Vendored minimal `serde_json`.
//!
//! JSON text to and from the workspace-local `serde` stub's [`Value`] tree.
//! Covers what the workspace uses: `to_string`, `to_string_pretty` and
//! `from_str`.  Non-finite floats serialize as `null` (as in real
//! serde_json's `Value` rendering); integers that fit `i64`/`u64` parse as
//! integers, everything else as `f64`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON error (serialization never fails; parsing reports offset + reason).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into the raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at offset {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn emit(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so the value
                // re-parses as a float.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => emit_block('[', ']', items.len(), indent, depth, out, |i, out| {
            emit(&items[i], indent, depth + 1, out)
        }),
        Value::Map(entries) => emit_block('{', '}', entries.len(), indent, depth, out, |i, out| {
            emit_string(&entries[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            emit(&entries[i].1, indent, depth + 1, out)
        }),
    }
}

fn emit_block(
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(i, out);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn round_trips_nested_values() {
        let mut m: HashMap<String, Vec<u64>> = HashMap::new();
        m.insert("a\"b".into(), vec![1, 2, 3]);
        m.insert("unicode ✓".into(), vec![]);
        let json = to_string(&m).unwrap();
        let back: HashMap<String, Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Map(vec![
            (
                "x".to_string(),
                Value::Seq(vec![Value::I64(1), Value::F64(0.5)]),
            ),
            ("y".to_string(), Value::Str("hi".to_string())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_keep_a_float_shape() {
        let json = to_string(&vec![1.0f64]).unwrap();
        assert_eq!(json, "[1.0]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, vec![1.0]);
    }

    #[test]
    fn escapes_and_surrogates_parse() {
        let s: String = from_str(r#""aA😀\n""#).unwrap();
        assert_eq!(s, "aA😀\n");
    }
}
