//! Vendored minimal `serde`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this self-contained stand-in.  It keeps the parts of serde's surface the
//! workspace actually uses — `Serialize` / `Deserialize` traits, the
//! `#[derive(...)]` macros (from the sibling `serde_derive` stub) and impls
//! for the std types that appear in workspace data structures — but trades
//! serde's zero-copy visitor architecture for a simple self-describing
//! [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`],
//! * [`Deserialize`] rebuilds a type from a [`Value`],
//! * the sibling `serde_json` stub converts `Value` to and from JSON text.
//!
//! Maps with non-string keys (e.g. `HashMap<QueryFragment, u64>`) serialize
//! as sequences of `[key, value]` pairs; map-like entries are sorted by a
//! canonical ordering so serialization is deterministic — snapshot files
//! produced from the same state are byte-identical.

pub use serde_derive::{Deserialize, Serialize};

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// The self-describing data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// String-keyed map (struct fields, enum tags, JSON objects).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, coercing between the three number representations.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(n) if n.fract() == 0.0 && n.is_finite() => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 && n.is_finite() => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Total, deterministic ordering over values: used to sort set/map entries so
/// serialized output does not depend on hash iteration order.
pub fn canonical_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Seq(_) => 4,
            Value::Map(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (i, j) in x.iter().zip(y.iter()) {
                let ord = canonical_cmp(i, j);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((ka, va), (kb, vb)) in x.iter().zip(y.iter()) {
                let ord = ka.cmp(kb).then_with(|| canonical_cmp(va, vb));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => {
            let (ra, rb) = (rank(a), rank(b));
            if ra != rb {
                return ra.cmp(&rb);
            }
            // Both numeric.
            let (x, y) = (
                a.as_f64().unwrap_or(f64::NAN),
                b.as_f64().unwrap_or(f64::NAN),
            );
            x.total_cmp(&y)
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, context: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Render a type into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild a type from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// -- helpers used by generated code ----------------------------------------

/// Look up a struct field by name and deserialize it.
pub fn map_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::new(format!("missing field `{key}` in {context}"))),
    }
}

/// Fetch a positional element of a sequence and deserialize it.
pub fn seq_item<T: Deserialize>(items: &[Value], index: usize, context: &str) -> Result<T, Error> {
    match items.get(index) {
        Some(v) => T::from_value(v),
        None => Err(Error::new(format!("missing element {index} in {context}"))),
    }
}

// -- impls for primitives ---------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("char", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("seq", "Vec"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("seq", "VecDeque"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| Error::expected("seq", "tuple"))?;
                Ok(($(seq_item::<$name>(items, $idx, "tuple")?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Maps serialize as a canonical-ordered sequence of `[key, value]` pairs so
/// that non-string keys round-trip and output is deterministic.
fn map_to_value<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    let mut pairs: Vec<Value> = entries
        .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
        .collect();
    pairs.sort_by(canonical_cmp);
    Value::Seq(pairs)
}

fn map_from_value<K: Deserialize, V: Deserialize>(
    value: &Value,
    context: &str,
) -> Result<Vec<(K, V)>, Error> {
    let items = value
        .as_seq()
        .ok_or_else(|| Error::expected("seq of pairs", context))?;
    items
        .iter()
        .map(|pair| {
            let kv = pair
                .as_seq()
                .ok_or_else(|| Error::expected("[key, value] pair", context))?;
            if kv.len() != 2 {
                return Err(Error::expected("[key, value] pair", context));
            }
            Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value, "HashMap")?
            .into_iter()
            .collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value, "BTreeMap")?
            .into_iter()
            .collect())
    }
}

fn set_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    let mut values: Vec<Value> = items.map(Serialize::to_value).collect();
    values.sort_by(canonical_cmp);
    Value::Seq(values)
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        set_to_value(self.iter())
    }
}

impl<T> Deserialize for HashSet<T>
where
    T: Deserialize + std::hash::Hash + Eq,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("seq", "HashSet"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        set_to_value(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("seq", "BTreeSet"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::I64(3)).unwrap(), 3.0);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn maps_round_trip_with_non_string_keys() {
        let mut m: HashMap<(String, u64), u64> = HashMap::new();
        m.insert(("a".into(), 1), 10);
        m.insert(("b".into(), 2), 20);
        let back = HashMap::<(String, u64), u64>::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn map_serialization_is_deterministic() {
        let mut m = HashMap::new();
        for i in 0..100u64 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.to_value(), m.clone().to_value());
    }
}
