#!/usr/bin/env bash
# Record a machine-readable benchmark snapshot.
#
# Runs the configuration-search-relevant benches (keyword_mapping, the
# search_stress scenarios, join_inference), the tracing-overhead pair, and
# the serving plane (service_throughput: in-process throughput plus the
# closed-loop socket load harness, whose BENCHJSON lines carry client-side
# p50/p99 latency, shed rate at fixed offered load, and wire bytes per
# request for each codec, plus the Zipfian translation-cache phases whose
# lines carry hot-repeat/cold-miss p50/p99 and hit rate) through the
# vendored criterion harness, and
# collects their BENCHJSON result lines into one JSON document, so the
# repository's perf trajectory is recorded per PR instead of living in
# commit messages.  The scale_data_plane group records the data plane's
# macro phases (scaled-log build, post-churn publish, v3 snapshot
# write/read, bounded-memory WAL recovery) at 1x/100x/1000x MAS scale.
#
# Usage:
#   tools/bench_snapshot.sh <output.json> [mean|smoke]
#
#   <output.json>    — where the snapshot is written (required; the output
#                      name is the caller's, not a hard-coded BENCH_PRn)
#   mean   (default) — measure and record mean ns/iter for every benchmark
#   smoke            — run every benchmark body once, unmeasured (CI-fast;
#                      records null means, proving the benches execute)

set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -lt 1 ]; then
  echo "usage: $0 <output.json> [mean|smoke]" >&2
  exit 2
fi
OUT="$1"
MODE="${2:-mean}"
BENCHES=(keyword_mapping search_stress join_inference tracing_overhead service_throughput scale_data_plane)

EXTRA_ARGS=()
if [ "$MODE" = "smoke" ]; then
  EXTRA_ARGS+=(--test)
elif [ "$MODE" != "mean" ]; then
  echo "usage: $0 <output.json> [mean|smoke]" >&2
  exit 2
fi

lines="$(mktemp)"
trap 'rm -f "$lines"' EXIT

for bench in "${BENCHES[@]}"; do
  echo "== cargo bench -p bench --bench $bench (${MODE})" >&2
  BENCH_JSON=1 cargo bench -p bench --bench "$bench" -- ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} \
    | tee /dev/stderr \
    | sed -n 's/^BENCHJSON //p' >> "$lines"
done

{
  printf '{\n  "mode": "%s",\n  "results": [\n' "$MODE"
  sed 's/^/    /' "$lines" | sed '$!s/$/,/'
  printf '  ]\n}\n'
} > "$OUT"

echo "wrote $(wc -l < "$lines") benchmark results to $OUT" >&2

# Per-benchmark deltas against the most recent previous BENCH_*.json, so a
# PR's perf movement is visible the moment the snapshot is recorded instead
# of requiring a by-hand diff in review.  Criterion-style entries compare
# mean ns/iter; load-harness entries compare client-side p50.
prev=""
for candidate in $(ls -1 BENCH_*.json 2>/dev/null | sort -V); do
  [ "$candidate" -ef "$OUT" ] && continue
  prev="$candidate"
done

if [ -n "$prev" ] && command -v jq >/dev/null 2>&1; then
  echo "== deltas vs $prev" >&2
  jq -r --slurpfile old "$prev" '
    ($old[0].results | map({key: .id, value: .}) | from_entries) as $base
    | .results[]
    | . as $new
    | $base[$new.id] as $o
    | select($o != null)
    | (if ($new.mean_ns != null and $o.mean_ns != null) then
         {metric: "mean", nv: ($new.mean_ns / 1000), ov: ($o.mean_ns / 1000)}
       elif ($new.p50_us != null and $o.p50_us != null) then
         {metric: "p50", nv: $new.p50_us, ov: $o.p50_us}
       else empty end) as $m
    | select($m.ov > 0)
    | "\($new.id)\t\($m.metric)\t\($m.nv)\t\($m.ov)"
  ' "$OUT" | awk -F'\t' '{
      d = $3 - $4
      printf "  %-50s %-4s %12.1f µs  (%+10.1f µs, %+7.1f%%)\n", $1, $2, $3, d, 100 * d / $4
    }' >&2
elif [ -z "$prev" ]; then
  echo "no previous BENCH_*.json snapshot — skipping deltas" >&2
fi
