#!/usr/bin/env bash
# Record a machine-readable benchmark snapshot.
#
# Runs the configuration-search-relevant benches (keyword_mapping, the
# search_stress scenarios, join_inference) plus the tracing-overhead pair
# (translation with tracing disabled vs enabled) through the vendored
# criterion harness and collects their BENCHJSON result lines into one
# JSON document,
# so the repository's perf trajectory is recorded per PR instead of living
# in commit messages.
#
# Usage:
#   tools/bench_snapshot.sh [mean|smoke] [output.json]
#
#   mean   (default) — measure and record mean ns/iter for every benchmark
#   smoke            — run every benchmark body once, unmeasured (CI-fast;
#                      records null means, proving the benches execute)
#
# Environment: BENCH_OUT overrides the output path (default BENCH_PR6.json).

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-mean}"
OUT="${2:-${BENCH_OUT:-BENCH_PR6.json}}"
BENCHES=(keyword_mapping search_stress join_inference tracing_overhead)

EXTRA_ARGS=()
if [ "$MODE" = "smoke" ]; then
  EXTRA_ARGS+=(--test)
elif [ "$MODE" != "mean" ]; then
  echo "usage: $0 [mean|smoke] [output.json]" >&2
  exit 2
fi

lines="$(mktemp)"
trap 'rm -f "$lines"' EXIT

for bench in "${BENCHES[@]}"; do
  echo "== cargo bench -p bench --bench $bench (${MODE})" >&2
  BENCH_JSON=1 cargo bench -p bench --bench "$bench" -- ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} \
    | tee /dev/stderr \
    | sed -n 's/^BENCHJSON //p' >> "$lines"
done

{
  printf '{\n  "mode": "%s",\n  "results": [\n' "$MODE"
  sed 's/^/    /' "$lines" | sed '$!s/$/,/'
  printf '  ]\n}\n'
} > "$OUT"

echo "wrote $(wc -l < "$lines") benchmark results to $OUT" >&2
