//! Workspace root crate for the Templar reproduction.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`; the actual functionality lives
//! in the member crates, re-exported here for convenience:
//!
//! * [`nlp`] — tokenizer, Porter stemmer, similarity model,
//! * [`sqlparse`] — SQL parser and canonicalizer,
//! * [`relational`] — in-memory database engine,
//! * [`schemagraph`] — schema graph and Steiner-tree join paths,
//! * [`templar_core`] — query fragments, QFG, keyword mapping, join inference,
//! * [`nlidb`] — Pipeline / NaLIR baselines and their augmented variants,
//! * [`templar_api`] — the typed, versioned, explainable translation API,
//! * [`templar_service`] — the concurrent multi-tenant serving subsystem,
//! * [`templar_server`] — the TCP serving plane: epoll reactor, binary
//!   codec negotiation, layered admission control,
//! * [`datasets`] — MAS / Yelp / IMDB benchmarks,
//! * [`eval`] — metrics, cross-validation and experiment drivers.

pub use datasets;
pub use eval;
pub use nlidb;
pub use nlp;
pub use relational;
pub use schemagraph;
pub use sqlparse;
pub use templar_api;
pub use templar_core;
pub use templar_server;
pub use templar_service;
